#include "par/comm.hpp"

#include <chrono>
#include <set>
#include <thread>

#include "obs/obs.hpp"

namespace ap3::par {

namespace {

/// Per-message obs accounting: inside a collective (a CollScope is active on
/// this thread) bytes land in the tagged family
/// "par:coll:{bytes,messages}[<op>/<algo>/<level>]" where level says whether
/// the message crossed a supernode boundary; user point-to-point traffic
/// keeps a per-tag breakdown ("par:p2p:bytes:tag[<tag>]"); "par:bytes:total"
/// is the grand total that must match World::traffic().bytes.
void account_obs(int tag, std::size_t bytes, bool inter_supernode) {
  if (!obs::enabled()) return;
  const auto delta = static_cast<double>(bytes);
  const detail::CollScope* scope = detail::CollScope::current();
  if (scope != nullptr && scope->armed()) {
    obs::counter_add(scope->bytes_name(inter_supernode), delta);
    obs::counter_add(scope->messages_name(inter_supernode), 1.0);
  } else if (scope == nullptr) {
    obs::counter_add_keyed("par:p2p:bytes:tag", tag, delta);
    obs::counter_add("par:p2p:messages", 1.0);
  }
  obs::counter_add("par:bytes:total", delta);
  obs::counter_add("par:messages:total", 1.0);
}

}  // namespace

namespace detail {

namespace {
thread_local const CollScope* tls_coll_scope = nullptr;
}  // namespace

CollScope::CollScope(const char* op, const char* algo)
    : prev_(tls_coll_scope) {
  tls_coll_scope = this;
  if (!obs::enabled()) return;
  armed_ = true;
  const std::string key = std::string(op) + '/' + algo;
  obs::counter_add("par:coll:calls[" + key + ']', 1.0);
  bytes_intra_ = "par:coll:bytes[" + key + "/intra]";
  bytes_inter_ = "par:coll:bytes[" + key + "/inter]";
  messages_intra_ = "par:coll:messages[" + key + "/intra]";
  messages_inter_ = "par:coll:messages[" + key + "/inter]";
}

CollScope::~CollScope() { tls_coll_scope = prev_; }

const CollScope* CollScope::current() { return tls_coll_scope; }

std::uint64_t FaultState::next_seq(int comm_id, int src, int dst_world,
                                   int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++stream_seq_[{comm_id, src, dst_world, tag}];
}

void FaultState::stash_dropped(int dst_world, Message message) {
  std::lock_guard<std::mutex> lock(mutex_);
  dropped_[dst_world].push_back(std::move(message));
}

std::size_t FaultState::retransmit_for(int dst_world, Mailbox& box) {
  std::vector<Message> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = dropped_.find(dst_world);
    if (it == dropped_.end() || it->second.empty()) return 0;
    pending = std::move(it->second);
    it->second.clear();
  }
  const std::size_t n = pending.size();
  for (Message& m : pending) box.deliver(std::move(m));
  retried.fetch_add(n, std::memory_order_relaxed);
  recovered_drop.fetch_add(n, std::memory_order_relaxed);
  obs::counter_add("fault:retried", static_cast<double>(n));
  obs::counter_add("fault:recovered:drop", static_cast<double>(n));
  obs::counter_add("fault:recovered", static_cast<double>(n));
  return n;
}

void Mailbox::enable_fault_mode(FaultState* state, int world_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_ = state;
  world_rank_ = world_rank;
}

bool Mailbox::in_sequence_locked(const Message& m) const {
  const auto it = next_expected_.find({m.comm_id, m.src, m.tag});
  const std::uint64_t expected = it == next_expected_.end() ? 1 : it->second;
  return m.seq == expected;
}

void Mailbox::admit_locked(Message&& m) {
  // Duplicate suppression: discard if the stream already consumed this
  // sequence number or an identical copy is still queued.
  const auto it = next_expected_.find({m.comm_id, m.src, m.tag});
  const std::uint64_t expected = it == next_expected_.end() ? 1 : it->second;
  bool duplicate = m.seq < expected;
  if (!duplicate) {
    for (const Message& q : queue_) {
      if (q.comm_id == m.comm_id && q.src == m.src && q.tag == m.tag &&
          q.seq == m.seq) {
        duplicate = true;
        break;
      }
    }
  }
  if (duplicate) {
    fault_->recovered_duplicate.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add("fault:recovered:duplicate", 1.0);
    obs::counter_add("fault:recovered", 1.0);
    return;
  }
  queue_.push_back(std::move(m));
}

void Mailbox::release_delayed_locked(bool force) {
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (!force) --it->countdown;
    if (force || it->countdown <= 0) {
      fault_->recovered_delay.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add("fault:recovered:delay", 1.0);
      obs::counter_add("fault:recovered", 1.0);
      admit_locked(std::move(it->message));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fault_ == nullptr) {
      queue_.push_back(std::move(message));
    } else {
      // Every delivery ages the held-back messages first, so a delayed
      // message overtaken by `countdown` successors is released (reordered)
      // exactly when its schedule says.
      release_delayed_locked(/*force=*/false);
      admit_locked(std::move(message));
    }
  }
  cv_.notify_all();
}

void Mailbox::deliver_delayed(Message message, int countdown) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AP3_REQUIRE(fault_ != nullptr);
    if (countdown <= 0) {
      admit_locked(std::move(message));
    } else {
      delayed_.push_back({std::move(message), countdown});
    }
  }
  cv_.notify_all();
}

std::deque<Message>::iterator Mailbox::find_locked(int comm_id, int src,
                                                   int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!matches(*it, comm_id, src, tag)) continue;
    if (fault_ != nullptr && !in_sequence_locked(*it)) continue;
    return it;
  }
  return queue_.end();
}

Message Mailbox::take_at_locked(std::deque<Message>::iterator it) {
  Message out = std::move(*it);
  queue_.erase(it);
  if (fault_ != nullptr)
    next_expected_[{out.comm_id, out.src, out.tag}] = out.seq + 1;
  return out;
}

Message Mailbox::take(int comm_id, int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (fault_ == nullptr) {
    for (;;) {
      auto it = find_locked(comm_id, src, tag);
      if (it != queue_.end()) return take_at_locked(it);
      cv_.wait(lock);
    }
  }
  // Fault mode: wait for the next in-sequence match; on timeout run the
  // recovery protocol — flush held-back (delayed) messages, then ask the
  // fault layer to retransmit anything dropped on the way to this rank —
  // with exponential backoff between polls so a stalled peer is not spammed.
  auto timeout = std::chrono::microseconds(
      std::max(1, fault_->config.retry_timeout_microseconds));
  const auto max_timeout = std::chrono::microseconds(
      std::max(1, fault_->config.max_timeout_microseconds));
  for (;;) {
    auto it = find_locked(comm_id, src, tag);
    if (it != queue_.end()) return take_at_locked(it);
    if (cv_.wait_for(lock, timeout) == std::cv_status::timeout) {
      fault_->timeouts.fetch_add(1, std::memory_order_relaxed);
      release_delayed_locked(/*force=*/true);
      FaultState* fault = fault_;
      const int me = world_rank_;
      lock.unlock();
      fault->retransmit_for(me, *this);
      lock.lock();
      timeout = std::min(timeout * 2, max_timeout);
    }
  }
}

bool Mailbox::try_take(int comm_id, int src, int tag, Message& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = find_locked(comm_id, src, tag);
  if (it == queue_.end()) return false;
  out = take_at_locked(it);
  return true;
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

}  // namespace detail

World::World(int nranks) : World(nranks, WorldOptions{}) {}

World::World(int nranks, const WorldOptions& options) : nranks_(nranks) {
  AP3_REQUIRE_MSG(nranks > 0, "World needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
  if (options.fault.any_faults()) {
    fault_state_ = std::make_unique<detail::FaultState>(options.fault);
    for (int r = 0; r < nranks; ++r)
      mailboxes_[static_cast<std::size_t>(r)]->enable_fault_mode(
          fault_state_.get(), r);
  }
}

const fault::InjectionLog* World::fault_log() const {
  return fault_state_ ? &fault_state_->log : nullptr;
}

fault::FaultStats World::fault_stats() const {
  fault::FaultStats out;
  if (!fault_state_) return out;
  const detail::FaultState& fs = *fault_state_;
  out.injected_drop = fs.injected_drop.load(std::memory_order_relaxed);
  out.injected_duplicate = fs.injected_duplicate.load(std::memory_order_relaxed);
  out.injected_delay = fs.injected_delay.load(std::memory_order_relaxed);
  out.injected_stall = fs.injected_stall.load(std::memory_order_relaxed);
  out.retried = fs.retried.load(std::memory_order_relaxed);
  out.timeouts = fs.timeouts.load(std::memory_order_relaxed);
  out.recovered_drop = fs.recovered_drop.load(std::memory_order_relaxed);
  out.recovered_duplicate =
      fs.recovered_duplicate.load(std::memory_order_relaxed);
  out.recovered_delay = fs.recovered_delay.load(std::memory_order_relaxed);
  return out;
}

TrafficStats World::traffic() const {
  return {messages_.load(std::memory_order_relaxed),
          bytes_.load(std::memory_order_relaxed)};
}

detail::Barrier& World::barrier_for(int comm_id, int parties) {
  std::lock_guard<std::mutex> lock(barrier_mutex_);
  auto it = barriers_.find(comm_id);
  if (it == barriers_.end()) {
    it = barriers_
             .emplace(comm_id, std::make_unique<detail::Barrier>(parties))
             .first;
  }
  return *it->second;
}

void World::account(std::size_t bytes) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void Request::wait() {
  if (action_) {
    action_();
    action_ = nullptr;
  }
}

void wait_all(std::span<Request> requests) {
  for (Request& request : requests) request.wait();
}

void Comm::post(int dest, int tag, std::size_t type_hash,
                std::span<const std::byte> bytes) const {
  AP3_REQUIRE_MSG(dest >= 0 && dest < size(),
                  "send to invalid rank " << dest << " (comm size " << size()
                                          << ")");
  detail::Message m;
  m.comm_id = comm_id_;
  m.src = rank_;
  m.tag = tag;
  m.type_hash = type_hash;
  m.data.assign(bytes.begin(), bytes.end());
  world_->account(bytes.size());
  const bool inter_supernode =
      topology_ != nullptr &&
      topology_->supernode_of(rank_) != topology_->supernode_of(dest);
  account_obs(tag, bytes.size(), inter_supernode);
  const int dst_world = world_rank_of(dest);
  detail::Mailbox& box = world_->mailbox(dst_world);

  detail::FaultState* fs = world_->fault_state();
  if (fs == nullptr) {
    box.deliver(std::move(m));
    return;
  }

  // Fault mode: every message gets a stream sequence number; the injector's
  // pure decision function then says what (if anything) goes wrong with it.
  m.seq = fs->next_seq(comm_id_, rank_, dst_world, tag);
  const fault::FaultPoint point{comm_id_, tag, world_rank_of(rank_), dst_world,
                                m.seq};
  const fault::Decision decision = fault::decide(fs->config, point);
  if (decision.faulted()) {
    fs->log.record({point, decision.action, decision.stall_microseconds});
    obs::counter_add("fault:injected", 1.0);
  }
  if (decision.stall_microseconds > 0) {
    fs->injected_stall.fetch_add(1, std::memory_order_relaxed);
    obs::counter_add("fault:injected:stall", 1.0);
    std::this_thread::sleep_for(
        std::chrono::microseconds(decision.stall_microseconds));
  }
  switch (decision.action) {
    case fault::Action::kDeliver:
      box.deliver(std::move(m));
      break;
    case fault::Action::kDrop:
      fs->injected_drop.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add("fault:injected:drop", 1.0);
      fs->stash_dropped(dst_world, std::move(m));
      break;
    case fault::Action::kDuplicate: {
      fs->injected_duplicate.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add("fault:injected:duplicate", 1.0);
      detail::Message copy = m;
      box.deliver(std::move(m));
      box.deliver(std::move(copy));
      break;
    }
    case fault::Action::kDelay:
      fs->injected_delay.fetch_add(1, std::memory_order_relaxed);
      obs::counter_add("fault:injected:delay", 1.0);
      box.deliver_delayed(std::move(m), decision.delay_deliveries);
      break;
  }
}

detail::Message Comm::take(int src, int tag) const {
  AP3_REQUIRE_MSG(src == kAnySource || (src >= 0 && src < size()),
                  "recv from invalid rank " << src);
  return world_->mailbox(world_rank_of(rank_)).take(comm_id_, src, tag);
}

int Comm::world_rank_of(int comm_rank) const {
  return group_[static_cast<std::size_t>(comm_rank)];
}

void Comm::barrier() const {
  world_->barrier_for(comm_id_, size()).arrive_and_wait();
}

Comm Comm::with_topology(std::shared_ptr<const Topology> topology,
                         CollectiveAlgo default_algo) const {
  AP3_REQUIRE_MSG(topology == nullptr || topology->nranks() == size(),
                  "with_topology: topology spans "
                      << (topology ? topology->nranks() : 0)
                      << " ranks but the communicator has " << size());
  AP3_REQUIRE_MSG(default_algo != CollectiveAlgo::kDefault,
                  "with_topology: default algorithm must be concrete");
  Comm out = *this;
  out.topology_ = std::move(topology);
  out.default_algo_ =
      out.topology_ != nullptr ? default_algo : CollectiveAlgo::kFlat;
  return out;
}

Comm Comm::split(int color, int key) const {
  AP3_REQUIRE_MSG(color >= 0, "split color must be non-negative");
  detail::SplitTable& table = world_->split_table();
  const std::uint64_t epoch = split_epoch_++;
  const auto table_key = std::make_pair(comm_id_, epoch);
  {
    std::unique_lock<std::mutex> lock(table.mutex);
    table.entries[table_key][rank_] = {color, key};
    if (static_cast<int>(table.entries[table_key].size()) == size()) {
      table.cv.notify_all();
    } else {
      table.cv.wait(lock, [&] {
        return static_cast<int>(table.entries[table_key].size()) == size();
      });
    }
  }

  // Every rank now computes the identical split deterministically.
  std::map<int, std::pair<int, int>> entries;
  {
    std::lock_guard<std::mutex> lock(table.mutex);
    entries = table.entries[table_key];
  }

  // Order the ranks of my color by (key, old rank).
  std::vector<std::pair<std::pair<int, int>, int>> mine;  // ((key, old), old)
  for (const auto& [old_rank, ck] : entries) {
    if (ck.first == color) mine.push_back({{ck.second, old_rank}, old_rank});
  }
  std::sort(mine.begin(), mine.end());

  std::vector<int> new_group;
  int new_rank = -1;
  for (const auto& [sort_key, old_rank] : mine) {
    if (old_rank == rank_) new_rank = static_cast<int>(new_group.size());
    new_group.push_back(world_rank_of(old_rank));
  }
  AP3_REQUIRE(new_rank >= 0);

  // Deterministic distinct id per (parent, epoch, color-index).
  std::set<int> colors;
  for (const auto& [old_rank, ck] : entries) colors.insert(ck.first);
  int color_index = 0;
  for (int c : colors) {
    if (c == color) break;
    ++color_index;
  }
  const int new_id =
      comm_id_ * 4096 + static_cast<int>(epoch % 64) * 64 + color_index + 1;

  Comm out(world_, std::move(new_group), new_rank, new_id, 0);
  if (topology_ != nullptr) {
    // Project the machine shape onto the subgroup: new rank i descends from
    // parent comm rank mine[i].second, whose supernode it keeps.
    std::vector<int> parent_ranks;
    parent_ranks.reserve(mine.size());
    for (const auto& [sort_key, old_rank] : mine) parent_ranks.push_back(old_rank);
    out.topology_ =
        std::make_shared<Topology>(topology_->induced(parent_ranks));
    out.default_algo_ = default_algo_;
  }
  return out;
}

void run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, WorldOptions{}, fn);
}

void run(int nranks, const WorldOptions& options,
         const std::function<void(Comm&)>& fn) {
  World world(nranks, options);
  std::vector<int> group(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) group[static_cast<std::size_t>(r)] = r;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        // Label this thread's observability buffer so exporters render one
        // timeline row per simulated rank.
        obs::set_rank(r);
        Comm comm(&world, group, r, /*comm_id=*/0, /*split_epoch=*/0);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace ap3::par
