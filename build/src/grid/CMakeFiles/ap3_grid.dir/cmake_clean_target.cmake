file(REMOVE_RECURSE
  "libap3_grid.a"
)
