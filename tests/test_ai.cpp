// Tests for the AI physics suite: architecture conformance to §5.2.1
// (layer/ResUnit counts, ~5e5 parameters at paper scale), the 7:1 + per-day
// validation split, normalization round trips, training skill on a synthetic
// physics surrogate, and the inference facade.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "ai/engine.hpp"
#include "ai/models.hpp"
#include "ai/normalizer.hpp"
#include "ai/suite.hpp"
#include "ai/trainer.hpp"
#include "base/rng.hpp"
#include "obs/obs.hpp"

namespace {

using namespace ap3;
using namespace ap3::ai;
using tensor::Tensor;

TEST(Models, PaperScaleCnnHasAboutHalfMillionParams) {
  TendencyCnn cnn(SuiteConfig::paper_scale());
  // §5.2.1: "approximately 5 × 10^5 trainable parameters".
  EXPECT_GT(cnn.num_params(), 4.0e5);
  EXPECT_LT(cnn.num_params(), 6.5e5);
  EXPECT_EQ(cnn.num_conv_layers(), 11);
  EXPECT_EQ(cnn.num_res_units(), 5);
}

TEST(Models, CnnOutputShape) {
  SuiteConfig config;
  config.cnn_hidden = 8;
  TendencyCnn cnn(config);
  Tensor x({3, 5, 30});
  const Tensor y = cnn.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{3, 4, 30}));
}

TEST(Models, MlpOutputShape) {
  SuiteConfig config;
  config.mlp_hidden = 16;
  RadiationMlp mlp(config);
  Tensor x({4, static_cast<size_t>(config.mlp_inputs())});
  const Tensor y = mlp.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{4, 2}));
  EXPECT_EQ(mlp.num_dense_layers(), 7);
}

TEST(Models, DeterministicInitFromSeed) {
  SuiteConfig config;
  config.cnn_hidden = 8;
  TendencyCnn a(config), b(config);
  Tensor x({1, 5, 30});
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.01f * static_cast<float>(i);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Models, FlopsScaleWithWidth) {
  SuiteConfig narrow;
  narrow.cnn_hidden = 16;
  SuiteConfig wide = narrow;
  wide.cnn_hidden = 32;
  EXPECT_GT(TendencyCnn(wide).flops_per_column(),
            3.0 * TendencyCnn(narrow).flops_per_column());
}

// --- split protocol --------------------------------------------------------

TEST(Split, SevenToOneOverDays) {
  const auto split = DataSplit::make(80, 24, 1);
  // 10 of 80 days are test days.
  EXPECT_EQ(split.test.size(), 10u * 24u);
  // 3 validation steps per training day.
  EXPECT_EQ(split.validation.size(), 70u * 3u);
  EXPECT_EQ(split.train.size(), 70u * 21u);
}

TEST(Split, PartitionIsDisjointAndComplete) {
  const auto split = DataSplit::make(16, 8, 2);
  std::vector<int> seen(16 * 8, 0);
  for (auto i : split.train) seen[i]++;
  for (auto i : split.test) seen[i]++;
  for (auto i : split.validation) seen[i]++;
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Split, DeterministicInSeed) {
  const auto a = DataSplit::make(16, 8, 5);
  const auto b = DataSplit::make(16, 8, 5);
  EXPECT_EQ(a.validation, b.validation);
  const auto c = DataSplit::make(16, 8, 6);
  EXPECT_NE(a.validation, c.validation);
}

// --- normalization -------------------------------------------------------------

TEST(Normalizer, ChannelZScoreRoundTrip) {
  Rng rng(2);
  Tensor data({20, 3, 10});
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<float>(rng.normal() * 5.0 + 100.0);
  const Tensor original = data;
  const auto norm = ChannelNormalizer::fit(data);
  norm.apply(data);
  // Normalized data: near-zero mean per channel.
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) sum += data[i];
  EXPECT_NEAR(sum / static_cast<double>(data.size()), 0.0, 1e-3);
  norm.invert(data);
  for (size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(data[i], original[i], 1e-3f);
}

TEST(Normalizer, HandlesConstantChannel) {
  Tensor data({4, 1, 3});
  data.fill(7.0f);
  const auto norm = ChannelNormalizer::fit(data);
  norm.apply(data);
  for (size_t i = 0; i < data.size(); ++i) EXPECT_NEAR(data[i], 0.0f, 1e-6f);
}

TEST(Normalizer, FlatVariantPerFeature) {
  Tensor data({10, 2});
  for (size_t i = 0; i < 10; ++i) {
    data.at2(i, 0) = static_cast<float>(i);         // mean 4.5
    data.at2(i, 1) = 100.0f + static_cast<float>(i);
  }
  const auto norm = ChannelNormalizer::fit_flat(data);
  EXPECT_NEAR(norm.mean(0), 4.5f, 1e-5f);
  EXPECT_NEAR(norm.mean(1), 104.5f, 1e-5f);
}

// --- training --------------------------------------------------------------------

TEST(Trainer, LearnsSyntheticColumnPhysics) {
  // Synthetic "physics": tendency channel = smoothed vertical gradient of a
  // made-up input combination. Small CNN must reduce loss substantially and
  // reach positive test R².
  SuiteConfig config;
  config.cnn_hidden = 8;
  config.levels = 12;
  TendencyCnn cnn(config);

  const size_t days = 16, steps = 4;
  const size_t n = days * steps;
  Rng rng(21);
  Tensor inputs({n, 5, 12}), targets({n, 4, 12});
  for (size_t s = 0; s < n; ++s) {
    for (size_t k = 0; k < 12; ++k) {
      const double z = k / 12.0;
      const double t = 1.0 - z + 0.1 * rng.normal();
      const double q = std::exp(-3.0 * z) + 0.05 * rng.normal();
      inputs.at3(s, 0, k) = static_cast<float>(0.3 * rng.normal());
      inputs.at3(s, 1, k) = static_cast<float>(0.3 * rng.normal());
      inputs.at3(s, 2, k) = static_cast<float>(t);
      inputs.at3(s, 3, k) = static_cast<float>(q);
      inputs.at3(s, 4, k) = static_cast<float>(1.0 - 0.9 * z);
    }
    for (size_t k = 0; k < 12; ++k) {
      const size_t up = k + 1 < 12 ? k + 1 : k;
      const size_t dn = k > 0 ? k - 1 : k;
      for (size_t c = 0; c < 4; ++c) {
        const size_t src = c == 3 ? 3 : 2;  // moisture drives dQ, temp the rest
        targets.at3(s, c, k) =
            0.5f * (inputs.at3(s, src, up) - inputs.at3(s, src, dn));
      }
    }
  }

  // Normalize as the suite does before training.
  const auto in_norm = ChannelNormalizer::fit(inputs);
  in_norm.apply(inputs);
  const auto t_norm = ChannelNormalizer::fit(targets);
  t_norm.apply(targets);

  const auto split = DataSplit::make(days, steps, 3);
  Trainer::Options options;
  options.epochs = 30;
  options.batch = 8;
  options.lr = 3e-3f;
  const TrainReport report =
      Trainer::fit(cnn.model(), inputs, targets, split, options);

  EXPECT_LT(report.final_train_loss, report.epoch_losses.front() * 0.5f);
  EXPECT_GT(report.test_r2, 0.3f);
  EXPECT_GT(report.validation_loss, 0.0f);
}

TEST(Trainer, GatherRowsSlicesLeadingDim) {
  Tensor data({4, 2}, {0, 1, 10, 11, 20, 21, 30, 31});
  const Tensor rows = Trainer::gather_rows(data, {3, 1});
  EXPECT_EQ(rows.at2(0, 0), 30.0f);
  EXPECT_EQ(rows.at2(1, 1), 11.0f);
}

// --- suite facade --------------------------------------------------------------------

TEST(Suite, ComputeBeforeFitThrows) {
  SuiteConfig config;
  config.cnn_hidden = 4;
  config.mlp_hidden = 8;
  config.levels = 6;
  AiPhysicsSuite suite(config);
  Tensor columns({1, 5, 6});
  std::vector<double> scalar = {290.0};
  EXPECT_THROW(suite.compute(columns, scalar, scalar), ap3::Error);
}

TEST(Suite, ComputeShapesAndDenormalization) {
  SuiteConfig config;
  config.cnn_hidden = 4;
  config.mlp_hidden = 8;
  config.levels = 6;
  AiPhysicsSuite suite(config);

  Rng rng(17);
  const size_t n = 32;
  Tensor columns({n, 5, 6}), tendencies({n, 4, 6}), fluxes({n, 2});
  std::vector<double> tskin(n), coszr(n);
  for (size_t s = 0; s < n; ++s) {
    tskin[s] = 285.0 + 10.0 * rng.normal();
    coszr[s] = rng.uniform();
    for (size_t c = 0; c < 5; ++c)
      for (size_t k = 0; k < 6; ++k)
        columns.at3(s, c, k) = static_cast<float>(rng.normal() * 10.0 + 200.0);
    for (size_t c = 0; c < 4; ++c)
      for (size_t k = 0; k < 6; ++k)
        tendencies.at3(s, c, k) = static_cast<float>(rng.normal() * 1e-4);
    fluxes.at2(s, 0) = static_cast<float>(400.0 + 50.0 * rng.normal());
    fluxes.at2(s, 1) = static_cast<float>(350.0 + 30.0 * rng.normal());
  }
  const Tensor rad_inputs = suite.make_rad_inputs(columns, tskin, coszr);
  EXPECT_EQ(rad_inputs.shape(),
            (std::vector<size_t>{n, static_cast<size_t>(config.mlp_inputs())}));
  suite.fit_normalizers(columns, tendencies, rad_inputs, fluxes);

  const SuiteOutput out = suite.compute(columns, tskin, coszr);
  EXPECT_EQ(out.tendencies.shape(), (std::vector<size_t>{n, 4, 6}));
  EXPECT_EQ(out.fluxes.shape(), (std::vector<size_t>{n, 2}));
  // Denormalized fluxes must land in physical magnitude (hundreds of W/m²),
  // not normalized units.
  double mean_gsw = 0.0;
  for (size_t s = 0; s < n; ++s) mean_gsw += out.fluxes.at2(s, 0);
  mean_gsw /= n;
  EXPECT_GT(std::abs(mean_gsw), 50.0);
}

TEST(Suite, SaveLoadRestoresBitIdenticalInference) {
  SuiteConfig config;
  config.cnn_hidden = 4;
  config.mlp_hidden = 8;
  config.levels = 6;
  AiPhysicsSuite suite(config);
  Rng rng(23);
  const size_t n = 16;
  Tensor columns({n, 5, 6}), tendencies({n, 4, 6}), fluxes({n, 2});
  std::vector<double> tskin(n, 288.0), coszr(n, 0.4);
  for (size_t i = 0; i < columns.size(); ++i)
    columns[i] = static_cast<float>(rng.normal() * 10 + 250);
  for (size_t i = 0; i < tendencies.size(); ++i)
    tendencies[i] = static_cast<float>(rng.normal() * 1e-4);
  for (size_t i = 0; i < fluxes.size(); ++i)
    fluxes[i] = static_cast<float>(300 + rng.normal() * 40);
  const Tensor rad_inputs = suite.make_rad_inputs(columns, tskin, coszr);
  suite.fit_normalizers(columns, tendencies, rad_inputs, fluxes);

  const std::string path = "/tmp/ap3_test_suite.bin";
  save_suite(suite, path);
  auto restored = load_suite(config, path);
  std::remove(path.c_str());

  const SuiteOutput a = suite.compute(columns, tskin, coszr);
  const SuiteOutput b = restored->compute(columns, tskin, coszr);
  for (size_t i = 0; i < a.tendencies.size(); ++i)
    EXPECT_EQ(a.tendencies[i], b.tendencies[i]);
  for (size_t i = 0; i < a.fluxes.size(); ++i)
    EXPECT_EQ(a.fluxes[i], b.fluxes[i]);
}

TEST(Suite, SaveBeforeFitThrows) {
  SuiteConfig config;
  config.cnn_hidden = 4;
  config.mlp_hidden = 8;
  config.levels = 6;
  AiPhysicsSuite suite(config);
  EXPECT_THROW(save_suite(suite, "/tmp/ap3_never.bin"), ap3::Error);
}

TEST(Suite, LoadMissingFileThrows) {
  SuiteConfig config;
  config.cnn_hidden = 4;
  config.mlp_hidden = 8;
  config.levels = 6;
  EXPECT_THROW(load_suite(config, "/tmp/ap3_does_not_exist.bin"), ap3::Error);
}

TEST(Suite, FlopsPerColumnPositiveAndDominatedByCnn) {
  SuiteConfig config = SuiteConfig::paper_scale();
  AiPhysicsSuite suite(config);
  EXPECT_GT(suite.flops_per_column(), 0.0);
  EXPECT_GT(suite.cnn().flops_per_column(), suite.mlp().flops_per_column());
}

// --- inference engine ---------------------------------------------------------
// Backend-equivalence properties: the engine contract (ai/engine.hpp) is that
// micro-batching, overlap, execution space, and the group-scaled storage
// policy are all bitwise-invisible; only kFp64 changes arithmetic.

struct EngineFixture {
  SuiteConfig config;
  std::shared_ptr<AiPhysicsSuite> suite;
  Tensor columns;
  std::vector<double> tskin, coszr;

  explicit EngineFixture(size_t n = 37) : columns({n, 5, 6}) {
    config.cnn_hidden = 4;
    config.mlp_hidden = 8;
    config.levels = 6;
    suite = std::make_shared<AiPhysicsSuite>(config);
    Rng rng(41);
    Tensor tendencies({n, 4, 6}), fluxes({n, 2});
    tskin.assign(n, 0.0);
    coszr.assign(n, 0.0);
    for (size_t s = 0; s < n; ++s) {
      tskin[s] = 285.0 + 10.0 * rng.normal();
      coszr[s] = rng.uniform();
    }
    for (size_t i = 0; i < columns.size(); ++i)
      columns[i] = static_cast<float>(rng.normal() * 10.0 + 230.0);
    for (size_t i = 0; i < tendencies.size(); ++i)
      tendencies[i] = static_cast<float>(rng.normal() * 1e-4);
    for (size_t i = 0; i < fluxes.size(); ++i)
      fluxes[i] = static_cast<float>(350.0 + 40.0 * rng.normal());
    const Tensor rad = suite->make_rad_inputs(columns, tskin, coszr);
    suite->fit_normalizers(columns, tendencies, rad, fluxes);
    // Fresh networks have zero-initialized readout layers (identity-at-init
    // residuals), which makes every precision path output exact zeros.
    // Randomize all weights so the engine comparisons exercise real
    // arithmetic, as a trained suite would.
    Rng wr(77);
    for (auto* model : {&suite->cnn().model(), &suite->mlp().model()}) {
      std::vector<float> w = model->save_weights();
      for (float& v : w) v = static_cast<float>(wr.normal() * 0.2);
      model->load_weights(w);
    }
  }

  SuiteOutput run(const EngineConfig& ec) {
    suite->set_engine_config(ec);
    return suite->compute(columns, tskin, coszr);
  }
};

void expect_same_output(const SuiteOutput& a, const SuiteOutput& b,
                        const char* what) {
  ASSERT_EQ(a.tendencies.size(), b.tendencies.size());
  ASSERT_EQ(a.fluxes.size(), b.fluxes.size());
  for (size_t i = 0; i < a.tendencies.size(); ++i)
    ASSERT_EQ(a.tendencies[i], b.tendencies[i]) << what << " tendency " << i;
  for (size_t i = 0; i < a.fluxes.size(); ++i)
    ASSERT_EQ(a.fluxes[i], b.fluxes[i]) << what << " flux " << i;
}

TEST(Engine, BitIdenticalAcrossSpacesAndStoragePolicies) {
  EngineFixture fx;
  EngineConfig ref_cfg;  // kSerial, fp32, micro_batch 64
  const SuiteOutput ref = fx.run(ref_cfg);
  constexpr pp::ExecSpace spaces[] = {pp::ExecSpace::kSerial,
                                      pp::ExecSpace::kHostThreads,
                                      pp::ExecSpace::kSunwayCPE};
  for (pp::ExecSpace space : spaces) {
    for (PrecisionPolicy precision :
         {PrecisionPolicy::kFp32, PrecisionPolicy::kGroupScaled}) {
      EngineConfig ec;
      ec.space = space;
      ec.precision = precision;
      ec.micro_batch = 16;
      const SuiteOutput out = fx.run(ec);
      expect_same_output(out, ref, to_string(precision));
    }
  }
}

TEST(Engine, MicroBatchSizeIsBitwiseInvisible) {
  EngineFixture fx;
  EngineConfig whole;
  whole.micro_batch = 0;  // one slot for the whole batch
  const SuiteOutput ref = fx.run(whole);
  for (size_t micro : {size_t{1}, size_t{5}, size_t{7}, size_t{64}}) {
    EngineConfig ec;
    ec.micro_batch = micro;
    const SuiteOutput out = fx.run(ec);
    expect_same_output(out, ref, "micro-batch");
  }
}

TEST(Engine, OverlapIsBitwiseInvisible) {
  EngineFixture fx;
  EngineConfig sync;
  sync.micro_batch = 8;
  const SuiteOutput ref = fx.run(sync);
  EngineConfig async = sync;
  async.overlap = true;
  async.space = pp::ExecSpace::kHostThreads;
  const SuiteOutput out = fx.run(async);
  // Host-threads was proven bitwise = serial above; overlap must not change
  // that: the async chunk plan is identical to the sync one.
  expect_same_output(out, ref, "overlap");
}

TEST(Engine, VerifyModeBoundsUlpDriftFromFp64Reference) {
  EngineFixture fx;
  EngineConfig ec;
  ec.verify = true;
  ec.micro_batch = 16;
  (void)fx.run(ec);
  const EngineStats& stats = fx.suite->engine().stats();
  EXPECT_LE(stats.max_verify_ulp, ec.ulp_bound);
  // An absurdly tight bound must trip the check.
  EngineConfig tight = ec;
  tight.ulp_bound = 0;
  EXPECT_THROW(fx.run(tight), ap3::Error);
}

TEST(Engine, Fp64PolicyStaysCloseToFp32) {
  EngineFixture fx;
  EngineConfig f32;
  const SuiteOutput a = fx.run(f32);
  EngineConfig f64;
  f64.precision = PrecisionPolicy::kFp64;
  const SuiteOutput b = fx.run(f64);
  for (size_t i = 0; i < a.fluxes.size(); ++i)
    EXPECT_NEAR(a.fluxes[i], b.fluxes[i], 1e-2f) << i;
}

TEST(Engine, GroupScaledPolicyModelsHalfWidthWeights) {
  EngineFixture fx;
  EngineConfig gs;
  gs.precision = PrecisionPolicy::kGroupScaled;
  (void)fx.run(gs);
  const EngineStats& stats = fx.suite->engine().stats();
  ASSERT_GT(stats.fp32_weight_bytes, 0.0);
  ASSERT_GT(stats.gs_weight_bytes, 0.0);
  // FP32 payload + one FP64 scale per 64-float group: ~17/16 of half the
  // FP64 footprint — i.e. strictly below 0.6x of a double-precision copy,
  // and barely above the raw FP32 size.
  EXPECT_LT(stats.gs_weight_bytes, 1.2 * stats.fp32_weight_bytes);
}

TEST(Engine, CountsColumnsPerBackend) {
  obs::set_enabled(true);
  EngineFixture fx;
  const double before = obs::total_counter("ai:engine:columns:HostThreads");
  EngineConfig ec;
  ec.space = pp::ExecSpace::kHostThreads;
  (void)fx.run(ec);
  EXPECT_NEAR(obs::total_counter("ai:engine:columns:HostThreads"),
              before + static_cast<double>(fx.columns.dim(0)), 0.5);
}

TEST(Engine, UlpDistanceBasics) {
  EXPECT_EQ(ulp_distance(1.0f, 1.0f), 0u);
  EXPECT_EQ(ulp_distance(0.0f, -0.0f), 0u);
  EXPECT_EQ(ulp_distance(1.0f, std::nextafter(1.0f, 2.0f)), 1u);
  EXPECT_GT(ulp_distance(1.0f, -1.0f), 1u << 20);
}

}  // namespace
