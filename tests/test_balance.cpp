// Tests for the runtime load balancer (src/balance) and its grid plumbing:
// weighted_cuts invariants, explicit-cut block partitions, measured-cost
// active compaction, the hysteresis-guarded rebalance decision, bit-exact
// column migration (ocean and ice), and — the headline contract — identical
// coupled state_hash with rebalancing on vs off, in both task layouts,
// fault-free and under a heavy fault plan, including through a checkpoint
// written on a rebalanced decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "balance/balance.hpp"
#include "base/error.hpp"
#include "coupler/driver.hpp"
#include "grid/partition.hpp"
#include "harness.hpp"
#include "ice/ice.hpp"
#include "mct/attrvect.hpp"
#include "obs/obs.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using ap3::testing::expect_fields_equal;
using ap3::testing::heavy_fault_plan;
using ap3::testing::run_ranks;
using ap3::testing::TempDir;

// --- weighted_cuts ----------------------------------------------------------

TEST(WeightedCuts, CoverageAndBalance) {
  std::vector<double> w(100);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = 1.0 + static_cast<double>(i % 7);
  const std::vector<std::int64_t> cuts = grid::weighted_cuts(w, 4);
  ASSERT_EQ(cuts.size(), 5u);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), 100);
  double total = 0.0;
  for (const double v : w) total += v;
  const double target = total / 4.0;
  for (int p = 0; p < 4; ++p) {
    ASSERT_LT(cuts[static_cast<std::size_t>(p)],
              cuts[static_cast<std::size_t>(p) + 1]);
    double load = 0.0;
    for (std::int64_t i = cuts[static_cast<std::size_t>(p)];
         i < cuts[static_cast<std::size_t>(p) + 1]; ++i)
      load += w[static_cast<std::size_t>(i)];
    // Greedy prefix rule: each piece misses the target by at most one weight.
    EXPECT_NEAR(load, target, 7.0) << "piece " << p;
  }
}

TEST(WeightedCuts, NonemptyGuaranteeWithZeroWeightRuns) {
  // All weight at the front: without the guarantee every later piece would
  // collapse to nothing.
  std::vector<double> w(10, 0.0);
  w[0] = 1.0;
  const std::vector<std::int64_t> cuts = grid::weighted_cuts(w, 5, true);
  ASSERT_EQ(cuts.size(), 6u);
  for (std::size_t p = 0; p + 1 < cuts.size(); ++p)
    EXPECT_LT(cuts[p], cuts[p + 1]);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), 10);
}

TEST(WeightedCuts, RejectsBadInputs) {
  std::vector<double> w(3, 1.0);
  EXPECT_THROW(grid::weighted_cuts(w, 0), ap3::Error);
  EXPECT_THROW(grid::weighted_cuts(w, 5, true), ap3::Error);  // parts > n
  w[1] = -1.0;
  EXPECT_THROW(grid::weighted_cuts(w, 2), ap3::Error);
}

// --- explicit-cut block partitions ------------------------------------------

TEST(BlockPartition, ExplicitCutsRoundTrip) {
  const grid::BlockPartition2D uniform =
      grid::BlockPartition2D::balanced(48, 32, 4);
  const grid::BlockCuts cuts = uniform.cuts();
  const grid::BlockPartition2D explicit_part(48, 32, cuts);
  EXPECT_EQ(explicit_part.cuts(), cuts);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(explicit_part.x_range(r).begin, uniform.x_range(r).begin);
    EXPECT_EQ(explicit_part.x_range(r).end, uniform.x_range(r).end);
    EXPECT_EQ(explicit_part.y_range(r).begin, uniform.y_range(r).begin);
    EXPECT_EQ(explicit_part.y_range(r).end, uniform.y_range(r).end);
  }
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 48; ++i)
      ASSERT_EQ(explicit_part.owner(i, j), uniform.owner(i, j))
          << "(" << i << "," << j << ")";
}

TEST(BlockPartition, SkewedCutsOwnEveryCellExactlyOnce) {
  grid::BlockCuts cuts;
  cuts.x = {0, 5, 48};
  cuts.y = {0, 30, 32};
  const grid::BlockPartition2D part(48, 32, cuts);
  std::vector<std::int64_t> owned(4, 0);
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 48; ++i) {
      const int r = part.owner(i, j);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, 4);
      ++owned[static_cast<std::size_t>(r)];
    }
  for (int r = 0; r < 4; ++r) {
    const auto xr = part.x_range(r);
    const auto yr = part.y_range(r);
    EXPECT_EQ(owned[static_cast<std::size_t>(r)], xr.size() * yr.size());
  }
  EXPECT_EQ(owned[0] + owned[1] + owned[2] + owned[3], 48 * 32);
}

TEST(BlockPartition, BoundsChecksThrow) {
  const grid::BlockPartition2D part =
      grid::BlockPartition2D::balanced(16, 12, 4);
  EXPECT_THROW(part.x_range(-1), ap3::Error);
  EXPECT_THROW(part.x_range(4), ap3::Error);
  EXPECT_THROW(part.y_range(4), ap3::Error);
  EXPECT_THROW(part.owner(-1, 0), ap3::Error);
  EXPECT_THROW(part.owner(0, 12), ap3::Error);
  EXPECT_THROW(part.owner(16, 0), ap3::Error);
}

TEST(BlockPartition, RejectsMalformedCuts) {
  grid::BlockCuts cuts;
  cuts.x = {0, 20, 16};  // not ascending / overruns nx
  cuts.y = {0, 12};
  EXPECT_THROW(grid::BlockPartition2D(16, 12, cuts), ap3::Error);
  cuts.x = {2, 8, 16};  // does not start at 0
  EXPECT_THROW(grid::BlockPartition2D(16, 12, cuts), ap3::Error);
}

// --- measured-cost active compaction ----------------------------------------

TEST(ActiveCompaction, ColumnsBoundsCheckThrows) {
  const grid::TripolarGrid g(grid::TripolarConfig{24, 16, 4});
  const grid::ActiveCompaction compaction(g, 3);
  EXPECT_THROW(compaction.columns(-1), ap3::Error);
  EXPECT_THROW(compaction.columns(3), ap3::Error);
  EXPECT_NO_THROW(compaction.columns(2));
}

TEST(ActiveCompaction, KmtCostsReproduceStaticSplit) {
  const grid::TripolarGrid g(grid::TripolarConfig{24, 16, 4});
  const grid::ActiveCompaction by_kmt(g, 3);
  // Costs equal to each column's kmt must reproduce the static split.
  std::vector<double> cost;
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i)
      if (g.kmt(i, j) > 0) cost.push_back(static_cast<double>(g.kmt(i, j)));
  const grid::ActiveCompaction by_cost(g, 3, cost);
  for (int r = 0; r < 3; ++r) {
    const auto& a = by_kmt.columns(r);
    const auto& b = by_cost.columns(r);
    ASSERT_EQ(a.size(), b.size()) << "rank " << r;
    for (std::size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].i, b[c].i);
      EXPECT_EQ(a[c].j, b[c].j);
    }
  }
}

TEST(ActiveCompaction, MeasuredCostsShiftSplitAndCoverEveryColumn) {
  const grid::TripolarGrid g(grid::TripolarConfig{24, 16, 4});
  const grid::ActiveCompaction uniform(g, 3);
  // Make the first rank's columns 50x more expensive than the rest.
  const std::int64_t first_rank_columns =
      static_cast<std::int64_t>(uniform.columns(0).size());
  std::vector<double> cost;
  std::int64_t at = 0;
  for (int j = 0; j < g.ny(); ++j)
    for (int i = 0; i < g.nx(); ++i)
      if (g.kmt(i, j) > 0) cost.push_back(at++ < first_rank_columns ? 50.0 : 1.0);
  const grid::ActiveCompaction skewed(g, 3, cost);

  EXPECT_LT(skewed.columns(0).size(), uniform.columns(0).size());

  // Every active column still owned exactly once, in the same global order.
  std::vector<std::pair<int, int>> all;
  for (int r = 0; r < 3; ++r)
    for (const grid::CompactColumn& c : skewed.columns(r))
      all.emplace_back(c.j, c.i);
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), skewed.total_columns());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(skewed.total_columns(), uniform.total_columns());
}

// --- decision rule ----------------------------------------------------------

TEST(MeasuredCost, ImbalanceMath) {
  balance::MeasuredCost cost;
  cost.per_rank_seconds = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(cost.max_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(cost.mean_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(cost.imbalance(), 1.5);
  balance::MeasuredCost idle;
  idle.per_rank_seconds = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(idle.imbalance(), 1.0);
}

TEST(PlanRebalance, ShiftsCutTowardSlowRank) {
  const int nx = 8, ny = 4;
  std::vector<double> weight(static_cast<std::size_t>(nx * ny), 1.0);
  const grid::BlockPartition2D old_part(nx, ny, 2, 1);
  balance::MeasuredCost cost;
  cost.per_rank_seconds = {3.0, 1.0};  // rank 0 (left half) is the straggler
  const balance::CutPlan plan =
      balance::plan_rebalance(weight, nx, ny, old_part, cost);
  ASSERT_EQ(plan.cuts.x.size(), 3u);
  EXPECT_LT(plan.cuts.x[1], 4);  // slow rank sheds columns
  EXPECT_LT(plan.predicted_max_seconds, plan.current_max_seconds);
  EXPECT_GT(plan.moved_weight, 0);
  EXPECT_EQ(plan.total_weight, nx * ny);
}

TEST(LoadBalancer, HysteresisAndCooldown) {
  const int nx = 8, ny = 4;
  std::vector<double> weight(static_cast<std::size_t>(nx * ny), 1.0);
  const grid::BlockPartition2D part(nx, ny, 2, 1);

  balance::RebalancePolicy policy;
  policy.min_improvement = 0.0;
  policy.ignore_migration_cost = true;
  policy.cooldown = 1;
  balance::LoadBalancer balancer("test", policy);

  balance::MeasuredCost even;
  even.per_rank_seconds = {1.0, 1.05};  // below the 1.15 enter threshold
  balance::Decision d = balancer.consider(weight, nx, ny, part, even, 8.0);
  EXPECT_FALSE(d.migrate);
  EXPECT_STREQ(d.reason, "balanced");

  balance::MeasuredCost skew;
  skew.per_rank_seconds = {3.0, 1.0};
  d = balancer.consider(weight, nx, ny, part, skew, 8.0);
  EXPECT_TRUE(d.migrate);
  EXPECT_STREQ(d.reason, "migrate");

  // Immediately after a migration the cooldown rejects reconsideration even
  // under the same skew — the anti-thrash hysteresis.
  d = balancer.consider(weight, nx, ny, part, skew, 8.0);
  EXPECT_FALSE(d.migrate);
  EXPECT_STREQ(d.reason, "cooldown");

  // Cooldown expired and the load is now even: stay put.
  d = balancer.consider(weight, nx, ny, part, even, 8.0);
  EXPECT_FALSE(d.migrate);
  EXPECT_STREQ(d.reason, "balanced");
}

TEST(LoadBalancer, MigrationCostCanVeto) {
  const int nx = 8, ny = 4;
  std::vector<double> weight(static_cast<std::size_t>(nx * ny), 1.0);
  const grid::BlockPartition2D part(nx, ny, 2, 1);
  balance::MeasuredCost skew;
  skew.per_rank_seconds = {3.0e-9, 1.0e-9};  // big ratio, negligible seconds

  balance::RebalancePolicy policy;
  policy.min_improvement = 0.0;
  policy.amortize_windows = 1;
  policy.min_phase_seconds = 0.0;  // bypass the noise floor: test the veto
  balance::LoadBalancer strict("strict", policy);
  const balance::Decision d =
      strict.consider(weight, nx, ny, part, skew, 8.0);
  // Nanosecond-scale savings can never pay for a real migration.
  EXPECT_FALSE(d.migrate);
  EXPECT_STREQ(d.reason, "migration_cost");
  EXPECT_GT(d.migration_cost_seconds, d.predicted_savings_seconds);
}

TEST(LoadBalancer, NoiseFloorSkipsCheapPhases) {
  const int nx = 8, ny = 4;
  std::vector<double> weight(static_cast<std::size_t>(nx * ny), 1.0);
  const grid::BlockPartition2D part(nx, ny, 2, 1);

  // A few ms of scheduler preemption on a ms-scale phase reads as a 3x
  // imbalance; the absolute floor must reject it before the ratio gate.
  balance::RebalancePolicy policy;
  policy.min_improvement = 0.0;
  policy.ignore_migration_cost = true;
  balance::LoadBalancer balancer("floor", policy);
  balance::MeasuredCost tiny;
  tiny.per_rank_seconds = {0.003, 0.001};
  const balance::Decision d =
      balancer.consider(weight, nx, ny, part, tiny, 8.0);
  EXPECT_FALSE(d.migrate);
  EXPECT_STREQ(d.reason, "negligible");
}

TEST(LoadBalancer, SupernodeTopologyLowersMigrationCost) {
  const int nx = 8, ny = 4;
  std::vector<double> weight(static_cast<std::size_t>(nx * ny), 1.0);
  const grid::BlockPartition2D part(nx, ny, 2, 1);
  balance::MeasuredCost skew;
  skew.per_rank_seconds = {3.0, 1.0};

  balance::RebalancePolicy policy;
  policy.min_improvement = 0.0;
  policy.amortize_windows = 1;

  // Same plan, three cost models: default (all-inter), supernode-aware (both
  // owners share a supernode, so the moves stay on the fast level), and the
  // fraction set directly. The decision inputs are identical; only the
  // modeled migration cost may differ — and only downward.
  balance::LoadBalancer allinter("allinter", policy);
  const balance::Decision base =
      allinter.consider(weight, nx, ny, part, skew, 1e6);

  balance::LoadBalancer local("local", policy);
  local.set_block_topology(grid::SupernodeBlockMap(2, 1, 2));
  EXPECT_DOUBLE_EQ(local.intra_migration_fraction(), 1.0);
  const balance::Decision cheap =
      local.consider(weight, nx, ny, part, skew, 1e6);
  EXPECT_LT(cheap.migration_cost_seconds, base.migration_cost_seconds);

  balance::LoadBalancer half("half", policy);
  half.set_intra_migration_fraction(0.5);
  const balance::Decision mid = half.consider(weight, nx, ny, part, skew, 1e6);
  EXPECT_LT(mid.migration_cost_seconds, base.migration_cost_seconds);
  EXPECT_GT(mid.migration_cost_seconds, cheap.migration_cost_seconds);
}

// --- bit-exact column migration ---------------------------------------------

TEST(Migration, OceanRoundTripIsBitExact) {
  run_ranks(4, [](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{32, 24, 4};
    ocn::OcnModel a(comm, config);
    a.run(0.0, 3600.0);  // build up non-trivial state

    const std::vector<std::string> fields =
        ocn::OcnModel::migration_fields(config.grid.nz);
    mct::AttrVect a_cols(fields, a.ocean_gids().size());
    a.export_migration_fields(a_cols);
    const std::uint64_t hash_a =
        comm.allreduce_value(a.column_state_hash(), par::ReduceOp::kSum);

    // Migrate to a deliberately skewed decomposition...
    grid::BlockCuts skew = a.cuts();
    ASSERT_EQ(skew.px(), 2);
    ASSERT_EQ(skew.py(), 2);
    skew.x[1] = 5;
    skew.y[1] = 17;
    ocn::OcnModel b(comm, config, skew);
    balance::ColumnMigrator a2b(comm, a.ocean_gids(), b.ocean_gids());
    mct::AttrVect b_cols(fields, b.ocean_gids().size());
    a2b.migrate(a_cols, b_cols);
    b.import_migration_fields(b_cols);
    EXPECT_EQ(comm.allreduce_value(b.column_state_hash(), par::ReduceOp::kSum),
              hash_a);

    // ...where every global column is still owned exactly once...
    std::vector<std::int64_t> all_b = comm.allgatherv(
        std::span<const std::int64_t>(b.ocean_gids()), nullptr);
    std::vector<std::int64_t> all_a = comm.allgatherv(
        std::span<const std::int64_t>(a.ocean_gids()), nullptr);
    std::sort(all_a.begin(), all_a.end());
    std::sort(all_b.begin(), all_b.end());
    EXPECT_EQ(all_a, all_b);
    EXPECT_EQ(std::adjacent_find(all_b.begin(), all_b.end()), all_b.end());

    // ...and back to the original cuts: byte-identical column records.
    ocn::OcnModel c(comm, config, a.cuts());
    mct::AttrVect b_export(fields, b.ocean_gids().size());
    b.export_migration_fields(b_export);
    balance::ColumnMigrator b2c(comm, b.ocean_gids(), c.ocean_gids());
    mct::AttrVect c_cols(fields, c.ocean_gids().size());
    b2c.migrate(b_export, c_cols);
    c.import_migration_fields(c_cols);
    ASSERT_EQ(c.ocean_gids(), a.ocean_gids());
    mct::AttrVect c_export(fields, c.ocean_gids().size());
    c.export_migration_fields(c_export);
    for (std::size_t f = 0; f < c_export.num_fields(); ++f)
      expect_fields_equal(c_export.field(f), a_cols.field(f), 0, fields[f]);
  });
}

TEST(Migration, IceRoundTripIsBitExact) {
  run_ranks(2, [](par::Comm& comm) {
    ice::IceConfig config;
    config.grid = grid::TripolarConfig{32, 24, 3};
    config.dt_seconds = 1800.0;
    ice::IceModel a(comm, config);
    a.run(0.0, 3600.0);

    const std::vector<std::string> fields = ice::IceModel::migration_fields();
    mct::AttrVect a_cols(fields, a.ocean_gids().size());
    a.export_migration_fields(a_cols);
    const std::uint64_t hash_a =
        comm.allreduce_value(a.column_state_hash(), par::ReduceOp::kSum);

    grid::BlockCuts skew = a.cuts();
    ASSERT_EQ(skew.px(), 2);
    skew.x[1] = 7;
    ice::IceModel b(comm, config, skew);
    balance::ColumnMigrator a2b(comm, a.ocean_gids(), b.ocean_gids());
    mct::AttrVect b_cols(fields, b.ocean_gids().size());
    a2b.migrate(a_cols, b_cols);
    b.import_migration_fields(b_cols);
    EXPECT_EQ(comm.allreduce_value(b.column_state_hash(), par::ReduceOp::kSum),
              hash_a);
  });
}

// --- coupled: rebalancing on == rebalancing off ------------------------------

cpl::CoupledConfig rebalance_test_config(cpl::Layout layout, bool rebalance) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{48, 24, 3};
  config.layout = layout;
  config.atm_ranks = 1;
  config.ocn_couple_ratio = 2;
  // Sleep-based synthetic straggler on the right half of the ocean grid:
  // models waiting-dominated imbalance without touching model state.
  config.ocn.stall_seconds_per_point = 1.0e-5;
  config.ocn.stall_i_begin = 24;
  if (rebalance) {
    config.rebalance_every = 1;
    // Permissive policy so the test exercises real migrations quickly.
    config.rebalance.imbalance_enter = 1.01;
    config.rebalance.min_improvement = 0.0;
    config.rebalance.ignore_migration_cost = true;
    config.rebalance.cooldown = 0;
  }
  return config;
}

std::uint64_t run_coupled(par::Comm& comm, cpl::Layout layout, bool rebalance,
                          int windows, long long* migrations = nullptr) {
  cpl::CoupledModel model(comm, rebalance_test_config(layout, rebalance));
  model.run_windows(windows);
  if (migrations) *migrations = model.rebalance_migrations();
  return model.state_hash();
}

TEST(CoupledRebalance, BitExactSequential) {
  run_ranks(2, [](par::Comm& comm) {
    const std::uint64_t off =
        run_coupled(comm, cpl::Layout::kSequential, false, 6);
    long long migrations = 0;
    const std::uint64_t on =
        run_coupled(comm, cpl::Layout::kSequential, true, 6, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without a migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, BitExactConcurrent) {
  run_ranks(3, [](par::Comm& comm) {
    const std::uint64_t off =
        run_coupled(comm, cpl::Layout::kConcurrent, false, 6);
    long long migrations = 0;
    const std::uint64_t on =
        run_coupled(comm, cpl::Layout::kConcurrent, true, 6, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without a migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, BitExactSequentialUnderHeavyFaults) {
  run_ranks(2, heavy_fault_plan(0xBA1A57), [](par::Comm& comm) {
    const std::uint64_t off =
        run_coupled(comm, cpl::Layout::kSequential, false, 4);
    long long migrations = 0;
    const std::uint64_t on =
        run_coupled(comm, cpl::Layout::kSequential, true, 4, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without a migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, BitExactConcurrentUnderHeavyFaults) {
  run_ranks(3, heavy_fault_plan(0x1CEB01), [](par::Comm& comm) {
    const std::uint64_t off =
        run_coupled(comm, cpl::Layout::kConcurrent, false, 4);
    long long migrations = 0;
    const std::uint64_t on =
        run_coupled(comm, cpl::Layout::kConcurrent, true, 4, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without a migration";
    EXPECT_EQ(on, off);
  });
}

// --- per-component busy channels: ice-only and atm-only stragglers -----------

enum class Straggler { kIce, kAtm };

cpl::CoupledConfig straggler_test_config(cpl::Layout layout, bool rebalance,
                                         Straggler who) {
  cpl::CoupledConfig config = rebalance_test_config(layout, rebalance);
  // Replace the legacy ocean straggler with the requested component's band:
  // only ONE component stalls, so any migration must come from its channel.
  config.ocn.stall_seconds_per_point = 0.0;
  config.ocn.stall_i_begin = -1;
  if (who == Straggler::kIce) {
    config.ice.stall_seconds_per_point = 1.0e-4;
    config.ice.stall_i_begin = 24;  // right half of the 48-wide ocean grid
  } else {
    config.atm.stall_seconds_per_point = 2.0e-4;
    config.atm.stall_cell_begin = 250;  // upper half of the 20·5² cells
  }
  // The ice steps once per window and the bands sleep tens of ms: drop the
  // noise floor so the short test windows clear the negligible gate.
  if (rebalance) config.rebalance.min_phase_seconds = 1.0e-3;
  return config;
}

std::uint64_t run_straggler(par::Comm& comm, const cpl::CoupledConfig& config,
                            int windows, long long* migrations = nullptr) {
  cpl::CoupledModel model(comm, config);
  model.run_windows(windows);
  if (migrations) *migrations = model.rebalance_migrations();
  return model.state_hash();
}

TEST(CoupledRebalance, IceStragglerBitExactSequential) {
  run_ranks(2, [](par::Comm& comm) {
    const std::uint64_t off = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, false, Straggler::kIce),
        6);
    long long migrations = 0;
    const std::uint64_t on = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kIce),
        6, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without an ice migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, IceStragglerBitExactConcurrent) {
  run_ranks(3, [](par::Comm& comm) {
    // Two atm-domain ranks so the ice has a block decomposition to re-cut.
    cpl::CoupledConfig off_config =
        straggler_test_config(cpl::Layout::kConcurrent, false, Straggler::kIce);
    off_config.atm_ranks = 2;
    const std::uint64_t off = run_straggler(comm, off_config, 6);
    cpl::CoupledConfig on_config =
        straggler_test_config(cpl::Layout::kConcurrent, true, Straggler::kIce);
    on_config.atm_ranks = 2;
    long long migrations = 0;
    const std::uint64_t on = run_straggler(comm, on_config, 6, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without an ice migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, IceStragglerBitExactUnderHeavyFaults) {
  run_ranks(2, heavy_fault_plan(0x1CEFA1), [](par::Comm& comm) {
    const std::uint64_t off = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, false, Straggler::kIce),
        4);
    long long migrations = 0;
    const std::uint64_t on = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kIce),
        4, &migrations);
    EXPECT_GT(migrations, 0) << "test is vacuous without an ice migration";
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, IceStragglerCheckpointOnRebalancedLayoutRestores) {
  TempDir dir;  // shared across rank threads: checkpoint I/O is collective
  run_ranks(2, [&dir](par::Comm& comm) {
    const cpl::CoupledConfig config =
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kIce);

    cpl::CoupledModel a(comm, config);
    a.run_windows(4);
    EXPECT_GT(a.rebalance_migrations(), 0)
        << "checkpoint must land on a rebalanced ice decomposition";
    a.checkpoint(dir.path());
    a.run_windows(2);
    const std::uint64_t hash_a = a.state_hash();

    cpl::CoupledModel b(comm, config);
    b.restore(dir.path());
    b.run_windows(2);
    EXPECT_EQ(b.state_hash(), hash_a);
  });
}

TEST(CoupledRebalance, AtmStragglerAssessesWithoutMigration) {
  run_ranks(2, [](par::Comm& comm) {
    const std::uint64_t off = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, false, Straggler::kAtm),
        6);
    long long migrations = -1;
    const std::uint64_t on = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kAtm),
        6, &migrations);
    // The 1-D icosahedral partition has no block cuts: the busy channel must
    // flow through the assessment path and never propose a migration.
    EXPECT_EQ(obs::local().counter("balance:atm:migrations"), 0.0);
    EXPECT_GT(obs::local().counter("balance:atm:considered"), 0.0);
    EXPECT_GT(obs::local().counter("balance:atm:skipped_immovable"), 0.0);
#ifndef AP3_SANITIZE_BUILD
    // With the only straggler on the atmosphere, nothing moves at all.
    // Sanitizer builds inflate compute unevenly enough that the deliberately
    // hair-trigger test policy can shift an ocean cut on noise; the atm
    // invariant above and the bitwise hash below hold regardless.
    EXPECT_EQ(migrations, 0);
#endif
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, AtmStragglerBitExactUnderHeavyFaults) {
  run_ranks(2, heavy_fault_plan(0xA73FA1), [](par::Comm& comm) {
    const std::uint64_t off = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, false, Straggler::kAtm),
        4);
    long long migrations = -1;
    const std::uint64_t on = run_straggler(
        comm,
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kAtm),
        4, &migrations);
    EXPECT_EQ(obs::local().counter("balance:atm:migrations"), 0.0);
#ifndef AP3_SANITIZE_BUILD
    EXPECT_EQ(migrations, 0);  // see AtmStragglerAssessesWithoutMigration
#endif
    EXPECT_EQ(on, off);
  });
}

TEST(CoupledRebalance, RestoredBusyWatermarkReproducesFirstDecision) {
#ifdef AP3_SANITIZE_BUILD
  // The decision hinge below is calibrated in absolute seconds (busy sleeps
  // against the min_phase_seconds floor). Sanitizers inflate compute 2-10x
  // while the sleeps stay real, which flips the gates; the watermark
  // persistence itself is covered bit-for-bit by the restore tests above.
  GTEST_SKIP() << "timing-calibrated decision test skipped under sanitizers";
#endif
  TempDir dir;
  run_ranks(2, [&dir](par::Comm& comm) {
    cpl::CoupledConfig config =
        straggler_test_config(cpl::Layout::kSequential, true, Straggler::kIce);
    // Scale the stall so the straggler rank sleeps ~0.1 s per ice step
    // regardless of the land mask: rank 1 of the 2-way split owns exactly
    // the i >= 24 band.
    const grid::TripolarGrid g(config.ocn.grid);
    std::int64_t band = 0;
    for (int j = 0; j < g.ny(); ++j)
      for (int i = 24; i < g.nx(); ++i)
        if (g.kmt(i, j) > 0) ++band;
    ASSERT_GT(band, 0);
    config.ice.stall_seconds_per_point = 0.1 / static_cast<double>(band);
    // One decision only, at window 4, measuring windows 0–3.
    config.rebalance_every = 2;
    // Floor calibrated between the post-restore-only busy time (~one window,
    // mean ≈ 0.1 s) and the watermark-restored measurement (~five window
    // equivalents, mean ≈ 0.25 s): dropping the checkpointed watermark
    // would leave the restored run below the floor and flip the decision.
    config.rebalance.min_phase_seconds = 0.17;

    cpl::CoupledModel a(comm, config);
    a.run_windows(3);  // busy accumulates mid-measurement-window
    ASSERT_EQ(a.rebalance_migrations(), 0);
    a.checkpoint(dir.path());
    a.run_windows(3);  // first decision fires at window 4
    const long long a_migrations = a.rebalance_migrations();
    EXPECT_GT(a_migrations, 0) << "uninterrupted run must decide to migrate";
    const std::uint64_t hash_a = a.state_hash();

    // The restored run must reach the same first decision: its measurement
    // window only spans post-restore spans, so the checkpointed busy
    // watermark supplies the missing pre-checkpoint stall seconds.
    cpl::CoupledModel b(comm, config);
    b.restore(dir.path());
    b.run_windows(3);
    EXPECT_EQ(b.rebalance_migrations(), a_migrations);
    EXPECT_EQ(b.state_hash(), hash_a);
    if (b.has_ice()) {
      EXPECT_EQ(b.ice().cuts(), a.ice().cuts());
    }
  });
}

TEST(CoupledRebalance, CheckpointOnRebalancedLayoutRestoresBitExact) {
  TempDir dir;  // shared across rank threads: checkpoint I/O is collective
  run_ranks(2, [&dir](par::Comm& comm) {
    const cpl::CoupledConfig config =
        rebalance_test_config(cpl::Layout::kSequential, true);

    cpl::CoupledModel a(comm, config);
    a.run_windows(4);
    EXPECT_GT(a.rebalance_migrations(), 0)
        << "checkpoint must land on a rebalanced decomposition";
    a.checkpoint(dir.path());
    a.run_windows(2);
    const std::uint64_t hash_a = a.state_hash();

    // A fresh model starts on the default decomposition; restore must adopt
    // the checkpointed cuts before reading sections.
    cpl::CoupledModel b(comm, config);
    b.restore(dir.path());
    b.run_windows(2);
    EXPECT_EQ(b.state_hash(), hash_a);
  });
}

}  // namespace
