#include "atm/physics.hpp"

#include <algorithm>
#include <cmath>

#include "ai/trainer.hpp"
#include "base/constants.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "obs/obs.hpp"
#include "tensor/dispatch.hpp"

namespace ap3::atm {

using constants::kCpDry;
using constants::kLatentVap;
using constants::kSolarConstant;

ColumnBatch::ColumnBatch(std::size_t ncols_, std::size_t nlev_)
    : ncols(ncols_), nlev(nlev_) {
  const std::size_t n = ncols * nlev;
  u.assign(n, 0.0);
  v.assign(n, 0.0);
  temp.assign(n, 260.0);
  q.assign(n, 1e-3);
  pressure.assign(n, 5e4);
  tskin.assign(ncols, 288.0);
  coszr.assign(ncols, 0.5);
  du.assign(n, 0.0);
  dv.assign(n, 0.0);
  dtemp.assign(n, 0.0);
  dq.assign(n, 0.0);
  gsw.assign(ncols, 0.0);
  glw.assign(ncols, 0.0);
  precip.assign(ncols, 0.0);
}

void ColumnBatch::zero_outputs() {
  std::fill(du.begin(), du.end(), 0.0);
  std::fill(dv.begin(), dv.end(), 0.0);
  std::fill(dtemp.begin(), dtemp.end(), 0.0);
  std::fill(dq.begin(), dq.end(), 0.0);
  std::fill(gsw.begin(), gsw.end(), 0.0);
  std::fill(glw.begin(), glw.end(), 0.0);
  std::fill(precip.begin(), precip.end(), 0.0);
}

namespace {
/// Effective relaxation rate for an explicit update: relaxing with rate k
/// over a step dt moves a fraction (1 − e^{−k·dt}) of the gap, never more.
double stable_rate(double k, double dt) {
  return (1.0 - std::exp(-k * dt)) / dt;
}
}  // namespace

ConventionalPhysics::ConventionalPhysics(ConventionalConfig config)
    : config_(config) {}

double ConventionalPhysics::qsat(double temp_k) const {
  // Simplified Clausius–Clapeyron around T_ref.
  return config_.qsat_ref *
         std::exp(0.0687 * (temp_k - config_.t_ref));  // ~doubles per 10 K
}

void ConventionalPhysics::convective_adjustment(ColumnBatch& batch,
                                                std::size_t col) const {
  // Dry adjustment: where the temperature increases too steeply downward
  // relative to the adiabatic reference, relax the pair toward neutrality.
  constexpr double kCritLapse = 9.0;  // K per level-gap proxy
  for (std::size_t k = 0; k + 1 < batch.nlev; ++k) {
    const std::size_t upper = batch.at(col, k);
    const std::size_t lower = batch.at(col, k + 1);
    const double excess = (batch.temp[lower] - batch.temp[upper]) - kCritLapse;
    if (excess > 0.0) {
      // Relax the pair toward neutral without overshooting the excess.
      const double rate = 0.5 * excess * stable_rate(1e-3, batch.dt);
      batch.dtemp[lower] -= rate;
      batch.dtemp[upper] += rate;
      // Convection also lifts moisture.
      const double moisture = 0.1 * rate * batch.q[lower];
      batch.dq[lower] -= moisture;
      batch.dq[upper] += moisture;
    }
  }
}

void ConventionalPhysics::condensation(ColumnBatch& batch,
                                       std::size_t col) const {
  for (std::size_t k = 0; k < batch.nlev; ++k) {
    const std::size_t i = batch.at(col, k);
    const double excess = batch.q[i] - qsat(batch.temp[i]);
    if (excess > 0.0) {
      // Remove at most the supersaturation over this step.
      const double rate =
          excess * stable_rate(config_.condensation_rate / 1e-4 * 5e-5,
                               batch.dt);  // [kg/kg/s]
      batch.dq[i] -= rate;
      batch.dtemp[i] += rate * kLatentVap / kCpDry;
      batch.precip[col] += rate;  // column-integrated proxy
    }
  }
}

void ConventionalPhysics::boundary_layer(ColumnBatch& batch,
                                         std::size_t col) const {
  const std::size_t surf = batch.at(col, batch.nlev - 1);
  const double exchange = stable_rate(config_.bl_exchange, batch.dt);
  // Surface fluxes: relax lowest level toward the skin state; evaporation
  // toward saturation at tskin.
  batch.dtemp[surf] += exchange * (batch.tskin[col] - batch.temp[surf]);
  batch.dq[surf] +=
      exchange * 0.7 * (qsat(batch.tskin[col]) - batch.q[surf]);
  // Surface drag on the lowest-level winds.
  batch.du[surf] -= exchange * batch.u[surf];
  batch.dv[surf] -= exchange * batch.v[surf];
  // Interior vertical diffusion of T, Q, and momentum. Levels are
  // independent outputs here (the stencil reads the input state, never the
  // tendencies), so the pack path sweeps them in lane-parallel tiles; each
  // lane evaluates the exact scalar expression, so bits do not move.
  const double diffusion = stable_rate(config_.diffusion, batch.dt);
  if (config_.pack_width == 0) {
    for (std::size_t k = 1; k + 1 < batch.nlev; ++k) {
      const std::size_t i = batch.at(col, k);
      const std::size_t up = batch.at(col, k - 1);
      const std::size_t dn = batch.at(col, k + 1);
      batch.dtemp[i] += diffusion *
                        (batch.temp[up] + batch.temp[dn] - 2.0 * batch.temp[i]);
      batch.dq[i] +=
          diffusion * (batch.q[up] + batch.q[dn] - 2.0 * batch.q[i]);
      batch.du[i] +=
          diffusion * (batch.u[up] + batch.u[dn] - 2.0 * batch.u[i]);
      batch.dv[i] +=
          diffusion * (batch.v[up] + batch.v[dn] - 2.0 * batch.v[i]);
    }
    return;
  }
  pp::with_pack_width(config_.pack_width, [&]<int N>() {
    using P = pp::Pack<double, N>;
    const std::size_t base = batch.at(col, 0);
    auto diffuse = [&](const std::vector<double>& state,
                       std::vector<double>& tend) {
      const double* s = state.data() + base;
      double* d = tend.data() + base;
      pp::packed_sweep(
          1, batch.nlev >= 1 ? batch.nlev - 1 : 0,
          static_cast<std::size_t>(N), [&](const pp::PackTile& t) {
            const P up = pp::pack_load<double, N>(s + t.offset - 1, t.lanes);
            const P dn = pp::pack_load<double, N>(s + t.offset + 1, t.lanes);
            const P mid = pp::pack_load<double, N>(s + t.offset, t.lanes);
            const P acc = pp::pack_load<double, N>(d + t.offset, t.lanes);
            pp::pack_store(d + t.offset,
                           acc + diffusion * (up + dn - 2.0 * mid), t.lanes);
          });
    };
    diffuse(batch.temp, batch.dtemp);
    diffuse(batch.q, batch.dq);
    diffuse(batch.u, batch.du);
    diffuse(batch.v, batch.dv);
  });
}

void ConventionalPhysics::radiation(ColumnBatch& batch, std::size_t col) const {
  // Column humidity proxies cloud cover, blocking shortwave.
  double column_q = 0.0;
  for (std::size_t k = 0; k < batch.nlev; ++k)
    column_q += batch.q[batch.at(col, k)];
  column_q /= static_cast<double>(batch.nlev);
  const double cloud =
      std::min(0.8, config_.cloud_albedo_per_q * column_q * 10.0);
  const double coszr = std::max(0.0, batch.coszr[col]);

  // Surface downward shortwave and longwave (the two AI radiation targets).
  batch.gsw[col] = kSolarConstant * coszr * (1.0 - cloud) * 0.75;
  const std::size_t low = batch.at(col, batch.nlev - 1);
  const double t_low = batch.temp[low];
  batch.glw[col] = 0.8 * constants::kStefanBoltzmann * t_low * t_low * t_low *
                   t_low * (1.0 + 0.2 * cloud);

  // Heating of the column: solar absorption decays upward from the surface;
  // Newtonian cooling toward a reference profile. The column-q prologue
  // above is a reduction and stays scalar under every pack width; the
  // heating levels are independent outputs and take the pack path. The
  // solar prefactor is hoisted left-associatively, so `s * depth` performs
  // the identical final multiply of the scalar expression.
  const double cooling = stable_rate(config_.lw_cooling, batch.dt);
  if (config_.pack_width == 0) {
    for (std::size_t k = 0; k < batch.nlev; ++k) {
      const std::size_t i = batch.at(col, k);
      const double depth =
          static_cast<double>(k + 1) / static_cast<double>(batch.nlev);
      const double solar_heat = 1.2e-5 * coszr * (1.0 - cloud) * depth;
      const double t_eq = 210.0 + 80.0 * depth;  // reference profile
      batch.dtemp[i] += solar_heat - cooling * (batch.temp[i] - t_eq);
    }
    return;
  }
  pp::with_pack_width(config_.pack_width, [&]<int N>() {
    using P = pp::Pack<double, N>;
    const double s = 1.2e-5 * coszr * (1.0 - cloud);
    const double nlevd = static_cast<double>(batch.nlev);
    const std::size_t base = batch.at(col, 0);
    const double* temp = batch.temp.data() + base;
    double* dtemp = batch.dtemp.data() + base;
    pp::packed_sweep(
        0, batch.nlev, static_cast<std::size_t>(N),
        [&](const pp::PackTile& t) {
          const P depth = P::iota(t.offset + 1) / nlevd;
          const P solar_heat = s * depth;
          const P t_eq = 210.0 + 80.0 * depth;  // reference profile
          const P tv = pp::pack_load<double, N>(temp + t.offset, t.lanes);
          const P acc = pp::pack_load<double, N>(dtemp + t.offset, t.lanes);
          pp::pack_store(dtemp + t.offset,
                         acc + (solar_heat - cooling * (tv - t_eq)), t.lanes);
        });
  });
}

void ConventionalPhysics::compute(ColumnBatch& batch) {
  batch.zero_outputs();
  for (std::size_t col = 0; col < batch.ncols; ++col) {
    convective_adjustment(batch, col);
    condensation(batch, col);
    boundary_layer(batch, col);
    radiation(batch, col);
  }
}

double ConventionalPhysics::flops_per_column(std::size_t nlev) const {
  // Counted by inspection: ~90 flops per level across the four schemes plus
  // the transcendental qsat (~20 flop-equivalents each).
  return static_cast<double>(nlev) * 140.0;
}

AiPhysics::AiPhysics(std::shared_ptr<ai::AiPhysicsSuite> suite)
    : suite_(std::move(suite)) {
  AP3_REQUIRE(suite_ != nullptr);
}

AiPhysics::AiPhysics(std::shared_ptr<ai::AiPhysicsSuite> suite,
                     const ai::EngineConfig& engine)
    : AiPhysics(std::move(suite)) {
  suite_->set_engine_config(engine);
}

void AiPhysics::enable_online_training(const OnlineTrainingConfig& config) {
  AP3_REQUIRE(config.every_steps >= 1 && config.sample_cols >= 1);
  online_ = config;
  const tensor::AdamConfig adam{config.lr, 0.9f, 0.999f, 1e-8f};
  cnn_opt_ = std::make_unique<tensor::Adam>(suite_->cnn().model(), adam);
  mlp_opt_ = std::make_unique<tensor::Adam>(suite_->mlp().model(), adam);
  calls_ = 0;
}

std::vector<double> AiPhysics::pack_training_state() const {
  if (!cnn_opt_) return {};
  // Layout: [calls, then per optimizer (CNN, MLP): t, nparams, m..., v...].
  // float -> double is exact, so the round trip is bitwise.
  std::vector<double> out;
  out.push_back(static_cast<double>(calls_));
  for (const tensor::Adam* opt : {cnn_opt_.get(), mlp_opt_.get()}) {
    const tensor::Adam::State s = opt->state();
    out.push_back(static_cast<double>(s.t));
    out.push_back(static_cast<double>(s.m.size()));
    for (float x : s.m) out.push_back(static_cast<double>(x));
    for (float x : s.v) out.push_back(static_cast<double>(x));
  }
  return out;
}

void AiPhysics::restore_training_state(std::span<const double> state) {
  AP3_REQUIRE_MSG(cnn_opt_ != nullptr,
                  "restore_training_state requires online training enabled");
  std::size_t pos = 0;
  auto take = [&] {
    AP3_REQUIRE_MSG(pos < state.size(), "truncated AI training state");
    return state[pos++];
  };
  calls_ = static_cast<long long>(take());
  for (tensor::Adam* opt : {cnn_opt_.get(), mlp_opt_.get()}) {
    tensor::Adam::State s;
    s.t = static_cast<std::size_t>(take());
    const std::size_t n = static_cast<std::size_t>(take());
    s.m.resize(n);
    s.v.resize(n);
    for (std::size_t i = 0; i < n; ++i) s.m[i] = static_cast<float>(take());
    for (std::size_t i = 0; i < n; ++i) s.v[i] = static_cast<float>(take());
    opt->restore_state(s);
  }
  AP3_REQUIRE_MSG(pos == state.size(), "trailing bytes in AI training state");
}

void AiPhysics::online_step(const ColumnBatch& batch) {
  AP3_SPAN("atm:ai:online_step");
  const std::size_t n = std::min(online_.sample_cols, batch.ncols);
  const std::size_t nlev = batch.nlev;
  if (n == 0) return;

  // Truth on the leading columns of the live batch (a deterministic sample:
  // no RNG, so a restored run replays identical updates).
  ColumnBatch truth(n, nlev);
  truth.dt = batch.dt;
  for (std::size_t c = 0; c < n; ++c) {
    truth.tskin[c] = batch.tskin[c];
    truth.coszr[c] = batch.coszr[c];
    for (std::size_t k = 0; k < nlev; ++k) {
      const std::size_t i = batch.at(c, k);
      truth.u[i] = batch.u[i];
      truth.v[i] = batch.v[i];
      truth.temp[i] = batch.temp[i];
      truth.q[i] = batch.q[i];
      truth.pressure[i] = batch.pressure[i];
    }
  }
  truth_.compute(truth);

  tensor::Tensor raw({n, 5, nlev});
  tensor::Tensor y({n, 4, nlev});
  tensor::Tensor ry({n, 2});
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t k = 0; k < nlev; ++k) {
      const std::size_t i = truth.at(c, k);
      raw.at3(c, 0, k) = static_cast<float>(truth.u[i]);
      raw.at3(c, 1, k) = static_cast<float>(truth.v[i]);
      raw.at3(c, 2, k) = static_cast<float>(truth.temp[i]);
      raw.at3(c, 3, k) = static_cast<float>(truth.q[i]);
      raw.at3(c, 4, k) = static_cast<float>(truth.pressure[i]);
      y.at3(c, 0, k) = static_cast<float>(truth.du[i]);
      y.at3(c, 1, k) = static_cast<float>(truth.dv[i]);
      y.at3(c, 2, k) = static_cast<float>(truth.dtemp[i]);
      y.at3(c, 3, k) = static_cast<float>(truth.dq[i]);
    }
    ry.at2(c, 0) = static_cast<float>(truth.gsw[c]);
    ry.at2(c, 1) = static_cast<float>(truth.glw[c]);
  }
  tensor::Tensor rx = suite_->make_rad_inputs(raw, truth.tskin, truth.coszr);
  tensor::Tensor x = raw;
  suite_->input_norm().apply(x);
  suite_->tendency_norm().apply(y);
  suite_->rad_input_norm().apply(rx);
  suite_->flux_norm().apply(ry);

  // Training always runs serial/fp32 whatever the inference engine's
  // backend: updates must be bit-reproducible across engine configs.
  tensor::DispatchScope scope(
      {pp::ExecSpace::kSerial, 0, tensor::Accum::kFloat32});
  tensor::Sequential& cnn = suite_->cnn().model();
  cnn.zero_grads();
  const tensor::Tensor pred = cnn.forward(x);
  cnn.backward(tensor::mse_grad(pred, y));
  cnn_opt_->step();
  tensor::Sequential& mlp = suite_->mlp().model();
  mlp.zero_grads();
  const tensor::Tensor fpred = mlp.forward(rx);
  mlp.backward(tensor::mse_grad(fpred, ry));
  mlp_opt_->step();
  if (obs::enabled()) obs::counter_add("atm:ai:online_steps", 1.0);
}

void AiPhysics::compute(ColumnBatch& batch) {
  const auto& config = suite_->config();
  AP3_REQUIRE_MSG(batch.nlev == static_cast<std::size_t>(config.levels),
                  "AI suite trained for " << config.levels
                                          << " levels, batch has "
                                          << batch.nlev);
  batch.zero_outputs();
  tensor::Tensor columns({batch.ncols, 5, batch.nlev});
  for (std::size_t c = 0; c < batch.ncols; ++c) {
    for (std::size_t k = 0; k < batch.nlev; ++k) {
      const std::size_t i = batch.at(c, k);
      columns.at3(c, 0, k) = static_cast<float>(batch.u[i]);
      columns.at3(c, 1, k) = static_cast<float>(batch.v[i]);
      columns.at3(c, 2, k) = static_cast<float>(batch.temp[i]);
      columns.at3(c, 3, k) = static_cast<float>(batch.q[i]);
      columns.at3(c, 4, k) = static_cast<float>(batch.pressure[i]);
    }
  }
  const ai::SuiteOutput out = suite_->compute(columns, batch.tskin, batch.coszr);
  // Physical guardrails at the physics–dynamics interface: a network asked
  // to extrapolate outside its training distribution can emit runaway
  // tendencies; deployed ML parameterizations clamp to plausible process
  // rates so one bad column cannot destabilize the dycore.
  const double max_dtemp = 15.0 / batch.dt;   // ≤ 15 K per step
  const double max_dq = 5e-3 / batch.dt;      // ≤ 5 g/kg per step
  const double max_dwind = 15.0 / batch.dt;   // ≤ 15 m/s per step
  auto clamp = [](double v, double bound) {
    if (!std::isfinite(v)) return 0.0;
    return std::clamp(v, -bound, bound);
  };
  for (std::size_t c = 0; c < batch.ncols; ++c) {
    for (std::size_t k = 0; k < batch.nlev; ++k) {
      const std::size_t i = batch.at(c, k);
      batch.du[i] = clamp(out.tendencies.at3(c, 0, k), max_dwind);
      batch.dv[i] = clamp(out.tendencies.at3(c, 1, k), max_dwind);
      batch.dtemp[i] = clamp(out.tendencies.at3(c, 2, k), max_dtemp);
      batch.dq[i] = clamp(out.tendencies.at3(c, 3, k), max_dq);
    }
    batch.gsw[c] = std::clamp(static_cast<double>(out.fluxes.at2(c, 0)), 0.0,
                              1500.0);
    batch.glw[c] = std::clamp(static_cast<double>(out.fluxes.at2(c, 1)), 20.0,
                              700.0);
    // Precipitation diagnosed from the column moisture sink, as the AI suite
    // predicts tendencies rather than process rates.
    double sink = 0.0;
    for (std::size_t k = 0; k < batch.nlev; ++k) {
      const double dq = batch.dq[batch.at(c, k)];
      if (dq < 0.0) sink -= dq;
    }
    batch.precip[c] = sink;
  }

  if (cnn_opt_) {
    ++calls_;
    if (calls_ % online_.every_steps == 0) online_step(batch);
  }
}

double AiPhysics::flops_per_column(std::size_t nlev) const {
  (void)nlev;
  return suite_->flops_per_column();
}

TrainingData generate_training_data(const ConventionalPhysics& physics,
                                    std::size_t days, std::size_t steps_per_day,
                                    std::size_t nlev, std::uint64_t seed,
                                    double dt) {
  const std::size_t n = days * steps_per_day;
  TrainingData data;
  data.days = days;
  data.steps_per_day = steps_per_day;
  data.columns = tensor::Tensor({n, 5, nlev});
  data.tendencies = tensor::Tensor({n, 4, nlev});
  data.fluxes = tensor::Tensor({n, 2});
  data.tskin.resize(n);
  data.coszr.resize(n);

  Rng rng(seed);
  ColumnBatch batch(1, nlev);
  batch.dt = dt;
  ConventionalPhysics suite = physics;  // value copy: suite is stateless
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t day = s / steps_per_day;
    const std::size_t step = s % steps_per_day;
    // Seasonal cycle (20 days per season in the paper's corpus) plus a
    // diurnal cycle and weather noise.
    const double season = std::sin(2.0 * constants::kPi *
                                   static_cast<double>(day) /
                                   std::max<std::size_t>(days, 1));
    const double hour = 2.0 * constants::kPi * static_cast<double>(step) /
                        static_cast<double>(steps_per_day);
    const double lat_band = rng.uniform(-1.0, 1.0);  // sampled column latitude
    batch.tskin[0] = 288.0 + 12.0 * season - 25.0 * lat_band * lat_band +
                     3.0 * rng.normal();
    batch.coszr[0] = std::max(0.0, std::cos(hour) * (1.0 - 0.3 * lat_band * lat_band) +
                                       0.1 * rng.normal());
    for (std::size_t k = 0; k < nlev; ++k) {
      const double depth = static_cast<double>(k + 1) / static_cast<double>(nlev);
      const std::size_t i = batch.at(0, k);
      batch.temp[i] = 215.0 + (batch.tskin[0] - 215.0) * depth + 2.0 * rng.normal();
      batch.q[i] = 0.016 * std::exp(-4.0 * (1.0 - depth)) *
                   (1.0 + 0.4 * rng.normal());
      if (batch.q[i] < 0.0) batch.q[i] = 0.0;
      batch.u[i] = 12.0 * std::sin(3.0 * lat_band) + 4.0 * rng.normal();
      batch.v[i] = 3.0 * rng.normal();
      batch.pressure[i] = 1.0e5 * std::pow(depth, 1.2) + 2000.0;
    }
    suite.compute(batch);
    for (std::size_t k = 0; k < nlev; ++k) {
      const std::size_t i = batch.at(0, k);
      data.columns.at3(s, 0, k) = static_cast<float>(batch.u[i]);
      data.columns.at3(s, 1, k) = static_cast<float>(batch.v[i]);
      data.columns.at3(s, 2, k) = static_cast<float>(batch.temp[i]);
      data.columns.at3(s, 3, k) = static_cast<float>(batch.q[i]);
      data.columns.at3(s, 4, k) = static_cast<float>(batch.pressure[i]);
      data.tendencies.at3(s, 0, k) = static_cast<float>(batch.du[i]);
      data.tendencies.at3(s, 1, k) = static_cast<float>(batch.dv[i]);
      data.tendencies.at3(s, 2, k) = static_cast<float>(batch.dtemp[i]);
      data.tendencies.at3(s, 3, k) = static_cast<float>(batch.dq[i]);
    }
    data.fluxes.at2(s, 0) = static_cast<float>(batch.gsw[0]);
    data.fluxes.at2(s, 1) = static_cast<float>(batch.glw[0]);
    data.tskin[s] = batch.tskin[0];
    data.coszr[s] = batch.coszr[0];
  }
  return data;
}

TrainedSuite train_ai_physics(const TrainingData& data,
                              const ai::SuiteConfig& config, int epochs,
                              float lr) {
  AP3_REQUIRE(data.columns.dim(2) == static_cast<std::size_t>(config.levels));
  TrainedSuite out;
  out.suite = std::make_shared<ai::AiPhysicsSuite>(config);
  ai::AiPhysicsSuite& suite = *out.suite;

  const tensor::Tensor rad_inputs =
      suite.make_rad_inputs(data.columns, data.tskin, data.coszr);
  suite.fit_normalizers(data.columns, data.tendencies, rad_inputs, data.fluxes);

  // Train on normalized copies.
  tensor::Tensor x = data.columns;
  suite.input_norm().apply(x);
  tensor::Tensor y = data.tendencies;
  suite.tendency_norm().apply(y);
  tensor::Tensor rx = rad_inputs;
  suite.rad_input_norm().apply(rx);
  tensor::Tensor ry = data.fluxes;
  suite.flux_norm().apply(ry);

  const ai::DataSplit split =
      ai::DataSplit::make(data.days, data.steps_per_day, config.seed);
  ai::Trainer::Options options;
  options.epochs = epochs;
  options.batch = 16;
  options.lr = lr;
  const ai::TrainReport cnn_report =
      ai::Trainer::fit(suite.cnn().model(), x, y, split, options);
  const ai::TrainReport mlp_report =
      ai::Trainer::fit(suite.mlp().model(), rx, ry, split, options);
  out.tendency_r2 = cnn_report.test_r2;
  out.flux_r2 = mlp_report.test_r2;
  return out;
}

}  // namespace ap3::atm
