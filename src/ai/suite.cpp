#include "ai/suite.hpp"

#include <fstream>

#include "base/error.hpp"

namespace ap3::ai {

using tensor::Tensor;

AiPhysicsSuite::AiPhysicsSuite(const SuiteConfig& config)
    : config_(config), cnn_(config), mlp_(config) {}

void AiPhysicsSuite::fit_normalizers(const Tensor& columns,
                                     const Tensor& tendencies,
                                     const Tensor& rad_inputs,
                                     const Tensor& fluxes) {
  input_norm_ = ChannelNormalizer::fit(columns);
  tendency_norm_ = ChannelNormalizer::fit(tendencies);
  rad_input_norm_ = ChannelNormalizer::fit_flat(rad_inputs);
  flux_norm_ = ChannelNormalizer::fit_flat(fluxes);
  fitted_ = true;
}

Tensor AiPhysicsSuite::make_rad_inputs(const Tensor& columns,
                                       std::span<const double> tskin,
                                       std::span<const double> coszr) const {
  AP3_REQUIRE(columns.rank() == 3);
  const std::size_t batch = columns.dim(0);
  const std::size_t c = columns.dim(1);
  const std::size_t l = columns.dim(2);
  AP3_REQUIRE(tskin.size() == batch && coszr.size() == batch);
  Tensor out({batch, c * l + 2});
  for (std::size_t b = 0; b < batch; ++b) {
    std::size_t pos = 0;
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t k = 0; k < l; ++k) out.at2(b, pos++) = columns.at3(b, ch, k);
    out.at2(b, pos++) = static_cast<float>(tskin[b]);
    out.at2(b, pos++) = static_cast<float>(coszr[b]);
  }
  return out;
}

InferenceEngine& AiPhysicsSuite::engine() {
  if (!engine_) engine_ = std::make_unique<InferenceEngine>(*this);
  return *engine_;
}

SuiteOutput AiPhysicsSuite::compute(const Tensor& columns,
                                    std::span<const double> tskin,
                                    std::span<const double> coszr) {
  return engine().run(columns, tskin, coszr);
}

}  // namespace ap3::ai

namespace ap3::ai {
namespace {

void write_floats(std::ofstream& out, const std::vector<float>& data) {
  const std::uint64_t n = data.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
}

std::vector<float> read_floats(std::ifstream& in) {
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  AP3_REQUIRE_MSG(in.good(), "truncated AI suite file");
  std::vector<float> data(n);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  AP3_REQUIRE_MSG(in.good(), "truncated AI suite file");
  return data;
}

void write_normalizer(std::ofstream& out, const ChannelNormalizer& norm) {
  const std::uint8_t flat = norm.is_flat() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&flat), 1);
  write_floats(out, norm.means());
  write_floats(out, norm.stddevs());
}

ChannelNormalizer read_normalizer(std::ifstream& in) {
  std::uint8_t flat = 0;
  in.read(reinterpret_cast<char*>(&flat), 1);
  AP3_REQUIRE_MSG(in.good(), "truncated AI suite file");
  std::vector<float> means = read_floats(in);
  std::vector<float> stds = read_floats(in);
  return ChannelNormalizer::from_raw(flat != 0, std::move(means),
                                     std::move(stds));
}

}  // namespace

void save_suite(AiPhysicsSuite& suite, const std::string& path) {
  AP3_REQUIRE_MSG(suite.normalized(),
                  "cannot save an AI suite before its normalizers are fit");
  std::ofstream out(path, std::ios::binary);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  write_floats(out, suite.cnn().model().save_weights());
  write_floats(out, suite.mlp().model().save_weights());
  write_normalizer(out, suite.input_norm());
  write_normalizer(out, suite.tendency_norm());
  write_normalizer(out, suite.rad_input_norm());
  write_normalizer(out, suite.flux_norm());
}

std::shared_ptr<AiPhysicsSuite> load_suite(const SuiteConfig& config,
                                           const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AP3_REQUIRE_MSG(in, "cannot open " << path);
  auto suite = std::make_shared<AiPhysicsSuite>(config);
  suite->cnn().model().load_weights(read_floats(in));
  suite->mlp().model().load_weights(read_floats(in));
  ChannelNormalizer input = read_normalizer(in);
  ChannelNormalizer tendency = read_normalizer(in);
  ChannelNormalizer rad = read_normalizer(in);
  ChannelNormalizer flux = read_normalizer(in);
  suite->set_normalizers(std::move(input), std::move(tendency), std::move(rad),
                         std::move(flux));
  return suite;
}

}  // namespace ap3::ai
