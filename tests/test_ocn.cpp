// Tests for the LICOM-mini ocean: split time stepping, conservation and
// stability invariants, Canuto mixing behaviour, the §5.2.2 exclusion
// (identical results, ~30 % fewer column iterations), execution-space
// bitwise equivalence (§5.3), mixed precision (§5.2.3), and the coupler
// contract.
#include <gtest/gtest.h>

#include <cmath>

#include "base/constants.hpp"
#include "base/stats.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::ocn;

OcnConfig small_config() {
  OcnConfig config;
  config.grid = grid::TripolarConfig{48, 36, 8};
  return config;
}

TEST(OcnConfig, SplitRatioMatchesPaper) {
  const OcnConfig config = small_config();
  // §6.1: barotropic 2 s, baroclinic 20 s, tracer 20 s.
  EXPECT_EQ(config.barotropic_substeps, 10);
  EXPECT_NEAR(config.baroclinic_dt_seconds() / config.barotropic_dt_seconds(),
              10.0, 1e-9);
  EXPECT_DOUBLE_EQ(config.tracer_dt_seconds(), config.baroclinic_dt_seconds());
}

TEST(Ocn, InitialStateSane) {
  par::run(2, [](par::Comm& comm) {
    OcnModel model(comm, small_config());
    EXPECT_GT(model.mean_sst(), 5.0);
    EXPECT_LT(model.mean_sst(), 30.0);
    EXPECT_EQ(model.max_current(), 0.0);
    EXPECT_EQ(model.max_eta(), 0.0);
  });
}

TEST(Ocn, VolumeConservedToRoundoff) {
  par::run(4, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    // Kick with wind stress to create flow.
    mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.1;
    model.import_state(x2o);
    const double window = config.baroclinic_dt_seconds() * 10;
    model.run(0.0, window);
    EXPECT_GT(model.max_current(), 0.0);
    // Σ eta·A — barotropic flux form conserves it exactly up to roundoff
    // relative to total flux magnitudes.
    EXPECT_LT(std::abs(model.total_volume()), 1e3);  // m³, vs ~1e12 moved
  });
}

TEST(Ocn, StableUnderWindForcing) {
  par::run(2, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.2;
    for (auto& t : x2o.field("tauy")) t = 0.05;
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 50);
    EXPECT_TRUE(std::isfinite(model.max_current()));
    EXPECT_LT(model.max_current(), 5.0);  // no blow-up
    EXPECT_LT(model.max_eta(), 10.0);
  });
}

TEST(Ocn, HeatConservedWithoutSurfaceFlux) {
  par::run(2, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    const double heat0 = model.total_heat_content();
    mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.1;
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 20);
    const double heat1 = model.total_heat_content();
    // Advective-form transport conserves heat approximately; mixing is
    // exactly conservative. Allow small advective-form drift.
    EXPECT_NEAR(heat1 / heat0, 1.0, 5e-3);
  });
}

TEST(Ocn, SurfaceHeatingWarmsSst) {
  par::run(1, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    const double sst0 = model.mean_sst();
    mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& q : x2o.field("qnet")) q = 500.0;  // strong heating
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 20);
    EXPECT_GT(model.mean_sst(), sst0);
  });
}

TEST(Ocn, FreshwaterFreshensSurface) {
  par::run(1, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    double s0 = 0.0;
    int count = 0;
    for (int j = 0; j < model.ny_local(); ++j)
      for (int i = 0; i < model.nx_local(); ++i)
        if (model.is_ocean_local(i, j)) {
          s0 += model.salt(i, j, 0);
          ++count;
        }
    s0 /= count;
    mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& f : x2o.field("fresh")) f = 1e-4;  // heavy rain
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 20);
    double s1 = 0.0;
    for (int j = 0; j < model.ny_local(); ++j)
      for (int i = 0; i < model.nx_local(); ++i)
        if (model.is_ocean_local(i, j)) s1 += model.salt(i, j, 0);
    s1 /= count;
    EXPECT_LT(s1, s0);
  });
}

TEST(Ocn, SerialAndParallelBitwiseIdentical) {
  const OcnConfig config = small_config();
  auto run_case = [&](int nranks) {
    static std::vector<double> sst;
    sst.assign(static_cast<size_t>(config.grid.nx * config.grid.ny), -999.0);
    static std::mutex mutex;
    par::run(nranks, [&](par::Comm& comm) {
      OcnModel model(comm, config);
      mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
      for (auto& t : x2o.field("taux")) t = 0.15;
      model.import_state(x2o);
      model.run(0.0, config.baroclinic_dt_seconds() * 5);
      std::lock_guard<std::mutex> lock(mutex);
      std::size_t col = 0;
      for (auto gid : model.ocean_gids()) {
        const int i = static_cast<int>(gid % config.grid.nx) - model.x0();
        const int j = static_cast<int>(gid / config.grid.nx) - model.y0();
        sst[static_cast<size_t>(gid)] = model.temp(i, j, 0);
        ++col;
      }
    });
    return sst;
  };
  const std::vector<double> serial = run_case(1);
  const std::vector<double> parallel = run_case(4);
  for (size_t g = 0; g < serial.size(); ++g)
    EXPECT_EQ(serial[g], parallel[g]) << "gid " << g;
}

TEST(Ocn, ExclusionBitwiseIdenticalAndCheaper) {
  // §5.2.2: removing 3-D non-ocean points must not change results and must
  // remove ~30 % of the column iterations.
  const OcnConfig base = small_config();
  auto run_case = [&](bool exclude) {
    struct Result {
      std::vector<double> sst;
      long long iterations;
    };
    static Result result;
    par::run(1, [&](par::Comm& comm) {
      OcnConfig config = base;
      config.exclude_non_ocean = exclude;
      OcnModel model(comm, config);
      mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
      for (auto& t : x2o.field("taux")) t = 0.1;
      model.import_state(x2o);
      model.run(0.0, config.baroclinic_dt_seconds() * 5);
      result.sst.clear();
      for (auto gid : model.ocean_gids()) {
        const int i = static_cast<int>(gid % config.grid.nx);
        const int j = static_cast<int>(gid / config.grid.nx);
        result.sst.push_back(model.temp(i, j, 0));
      }
      result.iterations = model.column_iterations();
    });
    return result;
  };
  const auto baseline = run_case(false);
  const auto excluded = run_case(true);
  ASSERT_EQ(baseline.sst.size(), excluded.sst.size());
  for (size_t k = 0; k < baseline.sst.size(); ++k)
    EXPECT_EQ(baseline.sst[k], excluded.sst[k]);
  const double saved = 1.0 - static_cast<double>(excluded.iterations) /
                                 static_cast<double>(baseline.iterations);
  EXPECT_GT(saved, 0.15);
  EXPECT_LT(saved, 0.45);
}

TEST(Ocn, ExecSpacesBitwiseIdentical) {
  // §5.3 performance portability: Serial and HostThreads execution spaces
  // must produce identical trajectories.
  const OcnConfig base = small_config();
  auto run_case = [&](pp::ExecSpace space) {
    static std::vector<double> sst;
    par::run(1, [&](par::Comm& comm) {
      OcnConfig config = base;
      config.exec_space = space;
      OcnModel model(comm, config);
      mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
      for (auto& t : x2o.field("tauy")) t = 0.12;
      model.import_state(x2o);
      model.run(0.0, config.baroclinic_dt_seconds() * 5);
      sst.clear();
      for (auto gid : model.ocean_gids()) {
        const int i = static_cast<int>(gid % config.grid.nx);
        const int j = static_cast<int>(gid / config.grid.nx);
        sst.push_back(model.temp(i, j, 0));
      }
    });
    return sst;
  };
  const auto serial = run_case(pp::ExecSpace::kSerial);
  const auto threaded = run_case(pp::ExecSpace::kHostThreads);
  EXPECT_EQ(serial, threaded);
}

TEST(Ocn, MixedPrecisionWithinLicomRmsdBand) {
  // §5.2.3: 30-day-style comparison — here a shorter window — with the
  // area-weighted RMSD acceptance metric. Paper values: 0.018 °C for T.
  const OcnConfig base = small_config();
  auto run_case = [&](bool mixed) {
    static std::vector<double> sst, area;
    par::run(1, [&](par::Comm& comm) {
      OcnConfig config = base;
      config.mixed_precision = mixed;
      OcnModel model(comm, config);
      mct::AttrVect x2o(OcnModel::import_fields(), model.ocean_gids().size());
      for (auto& t : x2o.field("taux")) t = 0.1;
      model.import_state(x2o);
      model.run(0.0, config.baroclinic_dt_seconds() * 30);
      sst.clear();
      area.clear();
      for (auto gid : model.ocean_gids()) {
        const int i = static_cast<int>(gid % config.grid.nx);
        const int j = static_cast<int>(gid / config.grid.nx);
        sst.push_back(model.temp(i, j, 0));
        area.push_back(model.ocean_grid().cell_area(i, j));
      }
    });
    return std::make_pair(sst, area);
  };
  const auto [fp64, area] = run_case(false);
  const auto [mixed, area2] = run_case(true);
  const double rmsd = stats::weighted_rmsd(mixed, fp64, area);
  EXPECT_GT(rmsd, 0.0);      // mixed precision actually engaged
  EXPECT_LT(rmsd, 0.018);    // within the paper's reported band
}

TEST(Ocn, ExportImportContract) {
  par::run(2, [](par::Comm& comm) {
    OcnConfig config = small_config();
    OcnModel model(comm, config);
    mct::AttrVect o2x(OcnModel::export_fields(), model.ocean_gids().size());
    model.export_state(o2x);
    for (double sst : o2x.field("sst")) {
      EXPECT_GT(sst, 270.0);  // Kelvin
      EXPECT_LT(sst, 310.0);
    }
    EXPECT_EQ(model.gsmap().local_size(comm.rank()),
              static_cast<std::int64_t>(model.ocean_gids().size()));
  });
}

TEST(Ocn, GsmapCoversOnlyOceanPoints) {
  par::run(2, [](par::Comm& comm) {
    OcnModel model(comm, small_config());
    for (auto gid : model.ocean_gids()) {
      const int i = static_cast<int>(gid % model.config().grid.nx);
      const int j = static_cast<int>(gid / model.config().grid.nx);
      EXPECT_GT(model.ocean_grid().kmt(i, j), 0);
    }
  });
}

TEST(Canuto, StableColumnGetsBackgroundMixing) {
  CanutoMixing canuto;
  // Strongly stratified, no shear: Ri >> 1 -> kv ~ background.
  std::vector<double> t = {25.0, 15.0, 8.0, 4.0};
  std::vector<double> s = {35.0, 35.0, 35.0, 35.0};
  std::vector<double> zero(4, 0.0);
  std::vector<double> dz = {50.0, 100.0, 200.0};
  std::vector<double> kv(3);
  canuto.diffusivities({t, s, zero, zero, dz, 4}, kv);
  for (double k : kv) {
    EXPECT_GT(k, 0.9e-5);
    EXPECT_LT(k, 1e-4);
  }
}

TEST(Canuto, UnstableColumnConvects) {
  CanutoMixing canuto;
  // Cold over warm: statically unstable -> convective diffusivity.
  std::vector<double> t = {2.0, 10.0, 15.0, 20.0};
  std::vector<double> s(4, 35.0);
  std::vector<double> zero(4, 0.0);
  std::vector<double> dz = {50.0, 100.0, 200.0};
  std::vector<double> kv(3);
  canuto.diffusivities({t, s, zero, zero, dz, 4}, kv);
  for (double k : kv) EXPECT_DOUBLE_EQ(k, 0.1);
}

TEST(Canuto, ShearEnhancesMixing) {
  CanutoMixing canuto;
  std::vector<double> t = {25.0, 15.0, 8.0, 4.0};
  std::vector<double> s(4, 35.0);
  std::vector<double> no_shear(4, 0.0);
  std::vector<double> sheared = {1.0, 0.5, 0.1, 0.0};
  std::vector<double> dz = {50.0, 100.0, 200.0};
  std::vector<double> kv_calm(3), kv_shear(3);
  canuto.diffusivities({t, s, no_shear, no_shear, dz, 4}, kv_calm);
  canuto.diffusivities({t, s, sheared, no_shear, dz, 4}, kv_shear);
  EXPECT_GT(kv_shear[0], kv_calm[0]);
}

TEST(Canuto, SeafloorInterfacesZero) {
  CanutoMixing canuto;
  std::vector<double> t(6, 10.0), s(6, 35.0), zero(6, 0.0);
  std::vector<double> dz(5, 100.0);
  std::vector<double> kv(5);
  canuto.diffusivities({t, s, zero, zero, dz, 3}, kv);  // kmt = 3
  EXPECT_GT(kv[0], 0.0);
  EXPECT_GT(kv[1], 0.0);
  EXPECT_EQ(kv[2], 0.0);
  EXPECT_EQ(kv[3], 0.0);
  EXPECT_EQ(kv[4], 0.0);
}

TEST(Canuto, RichardsonSigns) {
  CanutoMixing canuto;
  EXPECT_GT(canuto.richardson(0.01, 0.001, 0.0), 0.0);   // stable
  EXPECT_LT(canuto.richardson(-0.01, 0.001, 0.0), 0.0);  // unstable
}

}  // namespace
