// Icosahedral triangular grid — the GRIST atmosphere mesh.
//
// Subdividing each edge of an icosahedron n times and projecting to the
// sphere yields V = 10n²+2 vertices, E = 30n² edges, F = 20n² triangular
// cells. Table 1 of the paper shows exactly this cell:edge:vertex ≈ 2:3:1
// signature (1 km: 3.4e8 cells, 5.0e8 edges, 1.7e8 vertices).
//
// Full geometry (coordinates, areas, adjacency) is generated for the small
// meshes the mini-model integrates; for the paper-scale meshes only the
// counts are needed (the perf model works from counts), available through
// IcosaCounts without allocating anything.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ap3::grid {

/// Closed-form mesh cardinalities for subdivision count n (no allocation).
struct IcosaCounts {
  std::int64_t n = 0;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::int64_t cells = 0;

  static IcosaCounts for_n(std::int64_t n) {
    return {n, 10 * n * n + 2, 30 * n * n, 20 * n * n};
  }
  /// Smallest n whose mean cell spacing is at or below `km`.
  static IcosaCounts for_resolution_km(double km);
  /// GRIST's resolution labels (Table 1): the "1 km" grid has 3.4e8 cells,
  /// i.e. n ≈ 4123; labels scale inversely. Use this to reproduce the
  /// paper's configurations rather than the mean-spacing definition.
  static IcosaCounts for_grist_label_km(double km);
  /// Mean cell spacing in km for subdivision n.
  static double resolution_km(std::int64_t n);
};

/// A point on the unit sphere.
struct SpherePoint {
  double x = 0, y = 0, z = 0;
  double lon() const;  ///< radians, [-pi, pi]
  double lat() const;  ///< radians, [-pi/2, pi/2]
};

/// Fully realized icosahedral mesh (small n only; O(n²) memory).
class IcosahedralGrid {
 public:
  /// Build the subdivision-n mesh. n >= 1; n <= ~512 is practical here.
  explicit IcosahedralGrid(int n);

  int n() const { return n_; }
  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_cells() const { return cell_vertices_.size(); }
  std::size_t num_edges() const { return edge_vertices_.size(); }

  const SpherePoint& vertex(std::size_t v) const { return vertices_[v]; }
  /// Cell centroid projected to the sphere.
  const SpherePoint& cell_center(std::size_t c) const { return centers_[c]; }
  /// Spherical triangle area (steradians; sums to 4π over the mesh).
  double cell_area(std::size_t c) const { return areas_[c]; }

  const std::array<std::uint32_t, 3>& cell_vertex_ids(std::size_t c) const {
    return cell_vertices_[c];
  }
  const std::array<std::uint32_t, 2>& edge_vertex_ids(std::size_t e) const {
    return edge_vertices_[e];
  }
  /// The (up to) 2 cells flanking an edge (boundary-free mesh: always 2).
  const std::array<std::uint32_t, 2>& edge_cell_ids(std::size_t e) const {
    return edge_cells_[e];
  }
  /// The 3 edge ids of a cell.
  const std::array<std::uint32_t, 3>& cell_edge_ids(std::size_t c) const {
    return cell_edges_[c];
  }
  /// The 3 neighbor cells across each edge of cell c.
  std::array<std::uint32_t, 3> cell_neighbors(std::size_t c) const;

  /// Great-circle distance between two unit-sphere points (radians).
  static double arc(const SpherePoint& a, const SpherePoint& b);

  /// Mean cell spacing in km (sqrt of mean cell area on the Earth sphere).
  double mean_spacing_km() const;

  /// Bytes held by the realized geometry and adjacency tables.
  std::size_t resident_bytes() const {
    return vertices_.size() * sizeof(SpherePoint) +
           centers_.size() * sizeof(SpherePoint) +
           areas_.size() * sizeof(double) +
           cell_vertices_.size() * sizeof(std::array<std::uint32_t, 3>) +
           edge_vertices_.size() * sizeof(std::array<std::uint32_t, 2>) +
           edge_cells_.size() * sizeof(std::array<std::uint32_t, 2>) +
           cell_edges_.size() * sizeof(std::array<std::uint32_t, 3>);
  }

 private:
  void build(int n);
  int n_;
  std::vector<SpherePoint> vertices_;
  std::vector<SpherePoint> centers_;
  std::vector<double> areas_;
  std::vector<std::array<std::uint32_t, 3>> cell_vertices_;
  std::vector<std::array<std::uint32_t, 2>> edge_vertices_;
  std::vector<std::array<std::uint32_t, 2>> edge_cells_;
  std::vector<std::array<std::uint32_t, 3>> cell_edges_;
};

}  // namespace ap3::grid
