# Empty dependencies file for ap3_mct.
# This may be replaced when dependencies are built.
