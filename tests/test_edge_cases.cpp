// Edge cases and failure injection across modules: wrong-size buffers,
// invalid ranks, degenerate decompositions, out-of-range physics inputs,
// missing files — the error paths a production model must fail loudly on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "atm/vortex.hpp"
#include "base/constants.hpp"
#include "base/timer.hpp"
#include "coupler/fluxes.hpp"
#include "grid/partition.hpp"
#include "io/subfile.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "mct/router.hpp"
#include "par/comm.hpp"
#include "pp/exec.hpp"
#include "pp/view.hpp"
#include "sunway/athread.hpp"
#include "sunway/coregroup.hpp"

namespace {

using namespace ap3;

// --- par -----------------------------------------------------------------------

TEST(EdgePar, SendToInvalidRankThrows) {
  par::run(2, [](par::Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(1, 5, 0), ap3::Error);
      EXPECT_THROW(comm.send_value(1, -1, 0), ap3::Error);
    }
    comm.barrier();
  });
}

TEST(EdgePar, RecvBufferTooSmallThrows) {
  par::run(2, [](par::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> big(10, 1.0);
      comm.send(std::span<const double>(big), 1, 3);
    } else {
      std::vector<double> small(3);
      EXPECT_THROW(comm.recv(std::span<double>(small), 0, 3), ap3::Error);
    }
  });
}

TEST(EdgePar, RequestWaitIsIdempotent) {
  par::run(2, [](par::Comm& comm) {
    const int peer = 1 - comm.rank();
    double value = comm.rank() + 1.0;
    std::vector<double> in(1);
    par::Request recv = comm.irecv(std::span<double>(in), peer, 7);
    comm.send(std::span<const double>(&value, 1), peer, 7);
    recv.wait();
    recv.wait();  // second wait must be a no-op, not a double-recv
    EXPECT_EQ(in[0], peer + 1.0);
  });
}

TEST(EdgePar, SingleRankWorldCollectivesWork) {
  par::run(1, [](par::Comm& comm) {
    EXPECT_EQ(comm.allreduce_value(5.0, par::ReduceOp::kSum), 5.0);
    const auto all = comm.allgather(std::span<const int>());
    EXPECT_TRUE(all.empty());
    comm.barrier();
    std::vector<int> data = {1, 2};
    comm.bcast(std::span<int>(data), 0);
    EXPECT_EQ(data[1], 2);
  });
}

TEST(EdgePar, ZeroLengthMessages) {
  par::run(2, [](par::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::span<const double>(), 1, 9);
    } else {
      std::vector<double> buffer(4, -1.0);
      const std::size_t n = comm.recv(std::span<double>(buffer), 0, 9);
      EXPECT_EQ(n, 0u);
      EXPECT_EQ(buffer[0], -1.0);  // untouched
    }
  });
}

// --- pp ------------------------------------------------------------------------

TEST(EdgePp, ViewRank4LayoutsConsistent) {
  pp::View<int, 4> right("r", 2, 3, 4, 5);
  pp::View<int, 4> left("l", pp::Layout::kLeft, 2, 3, 4, 5);
  right(1, 2, 3, 4) = 42;
  left(1, 2, 3, 4) = 42;
  EXPECT_EQ(right.linear(((1 * 3 + 2) * 4 + 3) * 5 + 4), 42);
  EXPECT_EQ(left.linear(1 + 2 * 2 + 3 * 2 * 3 + 4 * 2 * 3 * 4), 42);
}

TEST(EdgePp, ParallelReduceEmptyRangeReturnsInit) {
  const double out = pp::parallel_reduce<double>(
      pp::RangePolicy(10, 10).on(pp::ExecSpace::kHostThreads),
      [](std::size_t, double& acc) { acc += 1.0; }, 3.5);
  EXPECT_EQ(out, 3.5);
}

TEST(EdgePp, ScanOfEmptyRange) {
  std::vector<long long> out;
  const long long total = pp::parallel_scan<long long>(
      pp::RangePolicy(0, 0), [](std::size_t) { return 1LL; }, out);
  EXPECT_EQ(total, 0);
  EXPECT_TRUE(out.empty());
}

TEST(EdgePp, SingleElementRange) {
  int hits = 0;
  pp::parallel_for(pp::RangePolicy(41, 42).on(pp::ExecSpace::kHostThreads),
                   [&](std::size_t i) {
                     EXPECT_EQ(i, 41u);
                     ++hits;
                   });
  EXPECT_EQ(hits, 1);
}

// --- mct -----------------------------------------------------------------------

TEST(EdgeMct, SubsetUnknownFieldThrows) {
  mct::AttrVect av({"a", "b"}, 4);
  EXPECT_THROW(av.subset({"a", "zz"}), ap3::Error);
}

TEST(EdgeMct, GsMapWithEmptyRank) {
  const mct::GlobalSegMap map = mct::GlobalSegMap::from_all({{0, 1, 2}, {}});
  EXPECT_EQ(map.local_size(1), 0);
  EXPECT_TRUE(map.local_ids(1).empty());
  EXPECT_EQ(map.owner(1), 0);
}

TEST(EdgeMct, RouterDisjointIdSpacesMovesNothing) {
  const mct::GlobalSegMap src = mct::GlobalSegMap::from_all({{0, 1}, {2, 3}});
  const mct::GlobalSegMap dst = mct::GlobalSegMap::from_all({{10, 11}, {12}});
  for (int r = 0; r < 2; ++r) {
    const mct::Router router = mct::Router::build(r, src, dst);
    EXPECT_EQ(router.points_sent(), 0);
    EXPECT_EQ(router.points_received(), 0);
  }
}

TEST(EdgeMct, RouterRoundTripThroughBlob) {
  const mct::GlobalSegMap map =
      mct::GlobalSegMap::from_all({{0, 2, 4}, {1, 3, 5}});
  const mct::Router router = mct::Router::build(1, map, map);
  const mct::Router copy = mct::Router::deserialize(router.serialize());
  EXPECT_TRUE(router == copy);
}

// --- grid -----------------------------------------------------------------------

TEST(EdgeGrid, GristLabelScalesInversely) {
  const auto km1 = grid::IcosaCounts::for_grist_label_km(1.0);
  const auto km3 = grid::IcosaCounts::for_grist_label_km(3.0);
  EXPECT_NEAR(static_cast<double>(km1.n) / static_cast<double>(km3.n), 3.0,
              0.01);
}

TEST(EdgeGrid, InvalidBlockPartitionThrows) {
  EXPECT_THROW(grid::BlockPartition2D(4, 4, 8, 1), ap3::Error);  // px > nx
  EXPECT_THROW(grid::BlockPartition2D(4, 4, 0, 1), ap3::Error);
}

TEST(EdgeGrid, CompactionMoreRanksThanColumns) {
  // 8x8 grid with maybe ~45 ocean columns, 60 ranks: some ranks get nothing,
  // nothing crashes, every column assigned once.
  grid::TripolarGrid g(grid::TripolarConfig{8, 8, 4});
  grid::ActiveCompaction compaction(g, 60);
  std::int64_t total = 0;
  for (int r = 0; r < 60; ++r)
    total += static_cast<std::int64_t>(compaction.columns(r).size());
  EXPECT_EQ(total, compaction.total_columns());
}

TEST(EdgeGrid, TinyTripolarGridStillHasOcean) {
  grid::TripolarGrid g(grid::TripolarConfig{8, 8, 2});
  EXPECT_GT(g.active_points(), 0);
}

// --- sunway -----------------------------------------------------------------------

TEST(EdgeSunway, PartitionFewerItemsThanCpes) {
  const std::size_t n = 5;
  std::vector<int> hits(n, 0);
  for (int id = 0; id < 64; ++id) {
    const auto range = sunway::cpe_partition(n, id, 64);
    for (std::size_t i = range.begin; i < range.end; ++i) hits[i]++;
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(EdgeSunway, ZeroWorkCostsOnlySpawn) {
  sunway::KernelWork none;
  const double cpe =
      sunway::CoreGroup::predict(none, sunway::ExecTarget::kCpeCluster);
  EXPECT_GT(cpe, 0.0);      // spawn overhead
  EXPECT_LT(cpe, 1e-4);
  EXPECT_EQ(sunway::CoreGroup::predict(none, sunway::ExecTarget::kMpe), 0.0);
}

// --- coupler fluxes ------------------------------------------------------------------

TEST(EdgeFluxes, OutOfRangeIceFractionClamped) {
  cpl::BulkFluxConfig config;
  std::vector<double> taux{0.1}, tauy{0.0}, tbot{280.0}, qbot{0.005},
      gsw{200.0}, glw{300.0}, precip{1e-5}, sst{285.0}, ifrac{1.7};
  std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
  cpl::compute_air_sea_fluxes(
      config, {taux, tauy, tbot, qbot, gsw, glw, precip, sst, ifrac},
      {qnet, fresh, otaux, otauy});
  // Clamped to 1: pure conductive flux, no rain through the ice.
  EXPECT_NEAR(qnet[0], 2.0 * (280.0 - 285.0), 1e-9);
  EXPECT_EQ(fresh[0], 0.0);
}

TEST(EdgeFluxes, CalmWindStillDefined) {
  cpl::BulkFluxConfig config;
  std::vector<double> zero{0.0}, tbot{285.0}, qbot{0.008}, gsw{100.0},
      glw{320.0}, precip{0.0}, sst{285.0}, ifrac{0.0};
  std::vector<double> qnet(1), fresh(1), otaux(1), otauy(1);
  cpl::compute_air_sea_fluxes(
      config, {zero, zero, tbot, qbot, gsw, glw, precip, sst, ifrac},
      {qnet, fresh, otaux, otauy});
  EXPECT_TRUE(std::isfinite(qnet[0]));
}

// --- vortex ------------------------------------------------------------------------

TEST(EdgeVortex, SouthernHemisphereIsAnticyclonicVorticity) {
  par::run(1, [](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = 8;
    config.nlev = 4;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::Dycore dycore(comm, config, mesh);
    atm::VortexSpec spec;
    spec.lon_deg = 60.0;
    spec.lat_deg = -20.0;  // southern hemisphere
    atm::seed_vortex(dycore, spec);
    const auto vorticity = dycore.relative_vorticity();
    double core = 0.0, best = 1e300;
    for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
      const double d = atm::track_distance_km(
          60.0, -20.0, dycore.mesh().lon_rad(c) * constants::kRadToDeg,
          dycore.mesh().lat_rad(c) * constants::kRadToDeg);
      if (d < best) {
        best = d;
        core = vorticity[c];
      }
    }
    // SH cyclones rotate clockwise: negative relative vorticity.
    EXPECT_LT(core, 0.0);
  });
}

TEST(EdgeVortex, TrackerReportsNotFoundFarAway) {
  par::run(1, [](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = 6;
    config.nlev = 4;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::Dycore dycore(comm, config, mesh);
    // No vortex seeded; search a tiny radius around an arbitrary point.
    const atm::VortexFix fix = atm::track_vortex(dycore, comm, 10.0, 10.0, 1.0);
    EXPECT_FALSE(fix.found);
  });
}

// --- io --------------------------------------------------------------------------

TEST(EdgeIo, ReadMissingSubfileThrows) {
  par::run(2, [](par::Comm& comm) {
    io::SubfileConfig config{"/tmp/ap3_missing_subfiles", 2};
    std::vector<std::int64_t> ids = {static_cast<std::int64_t>(comm.rank())};
    EXPECT_THROW(io::read_subfiles(comm, config, ids), ap3::Error);
  });
}

TEST(EdgeIo, EmptyRankContribution) {
  const std::string base = "/tmp/ap3_edge_empty";
  par::run(3, [&](par::Comm& comm) {
    io::FieldData mine;
    if (comm.rank() == 1) {  // rank 1 owns nothing
      // empty
    } else {
      mine.ids = {comm.rank() * 10LL};
      mine.values = {static_cast<double>(comm.rank())};
    }
    io::write_subfiles(comm, {base, 1}, mine);
    comm.barrier();
    const io::FieldData back = io::read_subfiles(comm, {base, 1}, mine.ids);
    EXPECT_EQ(back.ids, mine.ids);
    comm.barrier();
  });
  std::remove((base + ".0.bin").c_str());
}

// --- timers --------------------------------------------------------------------------

TEST(EdgeTimer, SnapshotSortedByTotal) {
  TimerRegistry registry;
  registry.absorb(TimerStats{"fast", 1, 0.001, 0.001, 0.001});
  registry.absorb(TimerStats{"slow", 1, 0.75, 0.75, 0.75});
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "slow");
}

TEST(EdgeTimer, ReportRendersNestedNames) {
  TimerRegistry registry;
  registry.absorb(TimerStats{"run", 1, 1.0, 1.0, 1.0});
  registry.absorb(TimerStats{"run:phase", 1, 0.4, 0.4, 0.4});
  const std::string report = registry.report();
  EXPECT_NE(report.find("run:phase"), std::string::npos);
}

}  // namespace
