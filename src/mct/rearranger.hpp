// Rearranger — moves AttrVect data between two decompositions via a Router.
//
// §5.2.4: "Rearrangement in the coupler generalizes the matrix transpose.
// The original all-to-all MPI was inefficient; we implemented non-blocking
// point-to-point MPI, which overlaps communication and computation."
//
// The primitive is the split-phase pair: rearrange_begin posts all per-peer
// non-blocking sends and receives and returns a Pending handle; everything a
// rank does between begin and rearrange_end executes inside the wire window
// — this is the overlap hook the coupler's --overlap pipeline builds on.
// The strategies offered by the one-call rearrange() entry point are
//  - Strategy::kSplitPhase (default): begin + end back to back — the
//    optimized point-to-point exchange of the paper,
//  - Strategy::kAlltoallv: one collective carrying all peers' payloads (the
//    original, kept for comparison benchmarks),
//  - Strategy::kLeaderStaged: the alltoallv collective with the hierarchical
//    algorithm — inter-supernode payloads aggregate at supernode leaders so
//    each supernode pair exchanges one combined message. Requires a
//    par::Topology attached to the communicator (falls back to the flat
//    collective without one).
// Results are bitwise identical across strategies, and — because the
// transport's sequenced take/timeout/retransmission recovers faults
// independent of arrival order — identical under fault injection too.
#pragma once

#include "mct/attrvect.hpp"
#include "mct/router.hpp"
#include "par/comm.hpp"

namespace ap3::mct {

/// How rearrange() moves the payloads. The split-phase pair is the primitive;
/// kAlltoallv exists for benchmarks reproducing the paper's comparison;
/// kLeaderStaged routes the collective through the topology-aware
/// hierarchical algorithm (supernode-leader aggregation).
enum class Strategy { kAlltoallv, kSplitPhase, kLeaderStaged };

class Rearranger {
 public:
  Rearranger(const par::Comm& comm, Router router)
      : comm_(comm), router_(std::move(router)) {}

  /// In-flight split-phase exchange returned by rearrange_begin. Owns the
  /// packed send payloads and the landing buffers the posted receives write
  /// into; consumed (exactly once) by rearrange_end. Movable, not copyable.
  class Pending {
   public:
    Pending() = default;
    Pending(Pending&&) = default;
    Pending& operator=(Pending&&) = default;
    Pending(const Pending&) = delete;
    Pending& operator=(const Pending&) = delete;

    /// True between rearrange_begin and rearrange_end.
    bool active() const { return dst_ != nullptr; }

   private:
    friend class Rearranger;
    AttrVect* dst_ = nullptr;
    std::vector<std::vector<double>> send_payloads_;
    std::vector<par::Request> sends_;
    std::vector<std::vector<double>> recv_payloads_;  ///< recv_plan order
    std::vector<par::Request> recvs_;                 ///< recv_plan order
  };

  /// Moves every field of `src` into `dst` (field sets must match; point
  /// counts must match the router's plans). One call, both phases.
  void rearrange(const AttrVect& src, AttrVect& dst,
                 Strategy strategy = Strategy::kSplitPhase) const;

  /// Posts the exchange: packs per-peer payloads, starts non-blocking sends
  /// and receives, and returns without waiting. `src` may be reused or
  /// overwritten immediately (payloads are packed into the Pending); `dst`
  /// must stay alive and untouched until rearrange_end.
  Pending rearrange_begin(const AttrVect& src, AttrVect& dst) const;

  /// Completes a posted exchange: drains the receives (in deterministic
  /// recv-plan order), unpacks into the destination, and retires the sends.
  void rearrange_end(Pending& pending) const;

  const Router& router() const { return router_; }

 private:
  void do_alltoallv(const AttrVect& src, AttrVect& dst,
                    par::CollectivePolicy policy) const;
  std::vector<double> pack_for_peer(const AttrVect& src,
                                    const std::vector<std::int64_t>& plan) const;
  void unpack_from_peer(AttrVect& dst, const std::vector<std::int64_t>& plan,
                        std::span<const double> payload) const;

  const par::Comm& comm_;
  Router router_;
};

}  // namespace ap3::mct
