#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "obs/obs.hpp"
#include "sunway/arch.hpp"
#include "sunway/ldm.hpp"
#include "tensor/dispatch.hpp"

namespace ap3::tensor {

Dispatch& dispatch() {
  thread_local Dispatch d;
  return d;
}

sunway::DmaEngine& staging_dma() {
  static sunway::DmaEngine engine;
  return engine;
}

namespace {

std::size_t product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

/// Range policy for one kernel launch under the thread's dispatch config.
pp::RangePolicy pol(std::size_t n, std::string_view label) {
  pp::RangePolicy p(0, n);
  p.on(dispatch().space).named(label);
  if (dispatch().chunk != 0) p.chunked(dispatch().chunk);
  return p;
}

/// Packed range policy for one pack-tiled launch under the thread's config.
pp::PackedRangePolicy ppol(std::size_t n, std::size_t width, std::size_t row,
                           std::string_view label) {
  pp::PackedRangePolicy p(0, n);
  p.widthed(width).per_row(row).on(dispatch().space).named(label);
  if (dispatch().chunk != 0) p.chunked(dispatch().chunk);
  return p;
}

/// Fixed-order dot product; Acc selects the accumulation precision. With
/// Acc=float this is bitwise the pre-refactor serial kernel.
template <typename Acc>
inline float dot_k(const float* a, const float* w, std::size_t k) {
  Acc acc{};
  for (std::size_t p = 0; p < k; ++p)
    acc += static_cast<Acc>(a[p]) * static_cast<Acc>(w[p]);
  return static_cast<float>(acc);
}

/// Packed strip of fixed-order dots: orow[j] = dot(arow, w + j*k) for j in
/// [j0, j0 + lanes). The full-width path broadcasts one A element against N
/// weight rows per step — N independent accumulation chains in one vector
/// register, each performing dot_k's exact operation sequence (the fma is
/// lane-wise `acc += Acc(a) * Acc(w)`), so the bits match dot_k for every
/// lane. The masked tail falls back to dot_k itself and reads nothing past
/// w + (j0 + lanes) * k.
template <typename Acc, int N>
inline void packed_row_dots(const float* arow, const float* w, std::size_t k,
                            std::size_t j0, std::size_t lanes, float* orow) {
  if (lanes == static_cast<std::size_t>(N)) {
    pp::Pack<Acc, N> acc;
    const float* wbase = w + j0 * k;
    for (std::size_t p = 0; p < k; ++p)
      acc.fma(static_cast<Acc>(arow[p]),
              pp::pack_load_strided<Acc, N>(wbase + p, k));
    pp::pack_store(orow + j0, acc);
  } else {
    for (std::size_t l = 0; l < lanes; ++l)
      orow[j0 + l] = dot_k<Acc>(arow, w + (j0 + l) * k, k);
  }
}

template <typename Acc>
Tensor matmul_nt_flat(const Tensor& a, const Tensor& weight, std::size_t m,
                      std::size_t k, std::size_t n) {
  Tensor out({m, n});
  const float* ad = a.data();
  const float* wd = weight.data();
  float* od = out.data();
  pp::parallel_for(pol(m * n, "tensor:matmul_nt"), [=](std::size_t e) {
    const std::size_t i = e / n, j = e % n;
    od[e] = dot_k<Acc>(ad + i * k, wd + j * k, k);
  });
  return out;
}

/// Packed flat GEMM: one tile = one strip of N output columns of one row.
/// per_row(n) keeps tiles inside a row, so the e -> (i, j) div/mod runs once
/// per tile instead of once per element. Bitwise identical to
/// matmul_nt_flat for every width (see packed_row_dots).
template <typename Acc, int N>
Tensor matmul_nt_packed(const Tensor& a, const Tensor& weight, std::size_t m,
                        std::size_t k, std::size_t n) {
  Tensor out({m, n});
  const float* ad = a.data();
  const float* wd = weight.data();
  float* od = out.data();
  pp::parallel_for(
      ppol(m * n, static_cast<std::size_t>(N), n, "tensor:matmul_nt:packed"),
      [=](const pp::PackTile& t) {
        const std::size_t i = t.offset / n, j0 = t.offset % n;
        packed_row_dots<Acc, N>(ad + i * k, wd, k, j0, t.lanes, od + i * n);
      });
  return out;
}

/// Square LDM tile edge such that an A panel, a W panel and the output block
/// fit one CPE's scratchpad with headroom; 0 if even a 1x1 tile cannot fit.
std::size_t ldm_tile_edge(std::size_t k) {
  constexpr std::size_t kBudget = sunway::kLdmBytesPerCpe * 3 / 4;
  for (std::size_t t : {std::size_t{64}, std::size_t{48}, std::size_t{32},
                        std::size_t{24}, std::size_t{16}, std::size_t{8},
                        std::size_t{4}, std::size_t{2}, std::size_t{1}}) {
    if (sizeof(float) * (2 * t * k + t * t) <= kBudget) return t;
  }
  return 0;
}

/// kSunwayCPE GEMM: each parallel unit is one output panel. The panel's A
/// rows and W rows are DMA-staged into the CPE's 256 KiB LDM, the full-k
/// dots run from the scratchpad, and the finished block is DMA'd back row by
/// row. Staging is value-preserving and the accumulation order matches the
/// flat kernel, so the result is bit-identical to kSerial.
///
/// `pack` != 0 runs the in-panel dots as pack-tiled strips (packed_sweep +
/// packed_row_dots over the staged w_tile), which is the same tile sequence
/// the flat packed kernel would produce per output row — bits unchanged.
/// The panel launch is a plain RangePolicy, so the pp:pack:* counters are
/// charged here, once per GEMM, with the exact in-panel tile count.
template <typename Acc>
Tensor matmul_nt_cpe(const Tensor& a, const Tensor& weight, std::size_t m,
                     std::size_t k, std::size_t n, std::size_t edge,
                     std::size_t pack) {
  Tensor out({m, n});
  const std::size_t tiles_m = (m + edge - 1) / edge;
  const std::size_t tiles_n = (n + edge - 1) / edge;
  const float* ad = a.data();
  const float* wd = weight.data();
  float* od = out.data();
  if (pack != 0 && obs::enabled()) {
    std::size_t strips_per_row = 0;
    for (std::size_t jb = 0; jb < tiles_n; ++jb) {
      const std::size_t cols = std::min(edge, n - jb * edge);
      strips_per_row += (cols + pack - 1) / pack;
    }
    obs::counter_add("pp:pack:launches", 1.0);
    obs::counter_add("pp:pack:tiles",
                     static_cast<double>(strips_per_row * m));
  }
  pp::parallel_for(
      pol(tiles_m * tiles_n, "tensor:matmul_nt:cpe_panel"),
      [=](std::size_t tile) {
        thread_local sunway::LdmAllocator ldm(sunway::kLdmBytesPerCpe);
        ldm.reset();
        const std::size_t i0 = (tile / tiles_n) * edge;
        const std::size_t j0 = (tile % tiles_n) * edge;
        const std::size_t rows = std::min(edge, m - i0);
        const std::size_t cols = std::min(edge, n - j0);
        float* a_tile = ldm.alloc_array<float>(rows * k);
        float* w_tile = ldm.alloc_array<float>(cols * k);
        float* o_tile = ldm.alloc_array<float>(rows * cols);
        staging_dma().get(a_tile, ad + i0 * k, rows * k * sizeof(float));
        staging_dma().get(w_tile, wd + j0 * k, cols * k * sizeof(float));
        if (pack == 0) {
          for (std::size_t ii = 0; ii < rows; ++ii)
            for (std::size_t jj = 0; jj < cols; ++jj)
              o_tile[ii * cols + jj] =
                  dot_k<Acc>(a_tile + ii * k, w_tile + jj * k, k);
        } else {
          pp::with_pack_width(pack, [&]<int N>() {
            for (std::size_t ii = 0; ii < rows; ++ii)
              pp::packed_sweep(
                  0, cols, static_cast<std::size_t>(N),
                  [&](const pp::PackTile& t) {
                    packed_row_dots<Acc, N>(a_tile + ii * k, w_tile, k,
                                            t.offset, t.lanes,
                                            o_tile + ii * cols);
                  });
          });
        }
        for (std::size_t ii = 0; ii < rows; ++ii)
          staging_dma().put(od + (i0 + ii) * n + j0, o_tile + ii * cols,
                            cols * sizeof(float));
        if (obs::enabled())
          obs::counter_add("tensor:cpe:ldm_bytes",
                           static_cast<double>(sizeof(float) *
                                               (rows * k + cols * k +
                                                rows * cols)));
      });
  return out;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  AP3_REQUIRE_MSG(data_.size() == product(shape_),
                  "tensor data size does not match shape");
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  AP3_REQUIRE(product(shape) == data_.size());
  return Tensor(std::move(shape), data_);
}

Tensor matmul_nt(const Tensor& a, const Tensor& weight) {
  AP3_REQUIRE(a.rank() == 2 && weight.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1);
  const std::size_t n = weight.dim(0);
  AP3_REQUIRE_MSG(weight.dim(1) == k, "matmul_nt inner dimension mismatch");
  const Dispatch& d = dispatch();
  if (d.pack != 0)
    AP3_REQUIRE_MSG(pp::is_pack_width(d.pack),
                    "Dispatch.pack " << d.pack << " not in {0,1,2,4,8,16}");
  if (d.space == pp::ExecSpace::kSunwayCPE) {
    const std::size_t edge = ldm_tile_edge(k);
    if (edge != 0) {
      return d.accum == Accum::kFloat64
                 ? matmul_nt_cpe<double>(a, weight, m, k, n, edge, d.pack)
                 : matmul_nt_cpe<float>(a, weight, m, k, n, edge, d.pack);
    }
    // k too large for any LDM panel: fall through to the flat kernel (same
    // bits, no staging) rather than refuse the launch.
  }
  if (d.pack != 0) {
    return pp::with_pack_width(d.pack, [&]<int N>() {
      return d.accum == Accum::kFloat64
                 ? matmul_nt_packed<double, N>(a, weight, m, k, n)
                 : matmul_nt_packed<float, N>(a, weight, m, k, n);
    });
  }
  return d.accum == Accum::kFloat64 ? matmul_nt_flat<double>(a, weight, m, k, n)
                                    : matmul_nt_flat<float>(a, weight, m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  AP3_REQUIRE(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  AP3_REQUIRE_MSG(b.dim(0) == k, "matmul inner dimension mismatch");
  Tensor out({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  const bool f64 = dispatch().accum == Accum::kFloat64;
  pp::parallel_for(pol(m * n, "tensor:matmul"), [=](std::size_t e) {
    const std::size_t i = e / n, j = e % n;
    if (f64) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(ad[i * k + p]) * bd[p * n + j];
      od[e] = static_cast<float>(acc);
    } else {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ad[i * k + p] * bd[p * n + j];
      od[e] = acc;
    }
  });
  return out;
}

namespace {

/// Packed conv1d: one tile = N consecutive output positions of one (b, co)
/// row, so per_row(len) pins tiles inside a row and the taps become
/// contiguous loads. Lanes sweep (ci, t) in the same ascending order as the
/// scalar reference with identical out-of-range skips; the interior fast
/// path (every lane's source in range) uses a masked contiguous load, the
/// boundary path peels to per-lane scalar ops. acc lanes beyond the tail's
/// extent accumulate zeros and are never stored.
template <typename Acc, int N>
Tensor conv1d_packed(const Tensor& x, const Tensor& kernel, const Tensor& bias,
                     std::size_t batch, std::size_t cin, std::size_t len,
                     std::size_t cout, std::size_t kk) {
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kk / 2);
  Tensor out({batch, cout, len});
  const float* xd = x.data();
  const float* kd = kernel.data();
  const float* bd = bias.data();
  float* od = out.data();
  pp::parallel_for(
      ppol(batch * cout * len, static_cast<std::size_t>(N), len,
           "tensor:conv1d:packed"),
      [=](const pp::PackTile& t) {
        const std::size_t l0 = t.offset % len;
        const std::size_t co = (t.offset / len) % cout;
        const std::size_t b = t.offset / (len * cout);
        const std::ptrdiff_t slen = static_cast<std::ptrdiff_t>(len);
        const std::ptrdiff_t lanes = static_cast<std::ptrdiff_t>(t.lanes);
        pp::Pack<Acc, N> acc(static_cast<Acc>(bd[co]));
        for (std::size_t ci = 0; ci < cin; ++ci) {
          const float* xrow = xd + (b * cin + ci) * len;
          for (std::size_t tap = 0; tap < kk; ++tap) {
            const std::ptrdiff_t src0 = static_cast<std::ptrdiff_t>(l0) +
                                        static_cast<std::ptrdiff_t>(tap) - half;
            const float kv = kd[(co * cin + ci) * kk + tap];
            if (src0 >= 0 && src0 + lanes <= slen) {
              acc.fma(static_cast<Acc>(kv),
                      pp::pack_load<Acc, N>(xrow + src0, t.lanes));
            } else {
              for (std::ptrdiff_t l = 0; l < lanes; ++l) {
                const std::ptrdiff_t src = src0 + l;
                if (src < 0 || src >= slen) continue;
                acc[static_cast<int>(l)] +=
                    static_cast<Acc>(kv) * static_cast<Acc>(xrow[src]);
              }
            }
          }
        }
        pp::pack_store(od + t.offset, acc, t.lanes);
      });
  return out;
}

}  // namespace

Tensor conv1d(const Tensor& x, const Tensor& kernel, const Tensor& bias) {
  AP3_REQUIRE(x.rank() == 3 && kernel.rank() == 3 && bias.rank() == 1);
  const std::size_t batch = x.dim(0), cin = x.dim(1), len = x.dim(2);
  const std::size_t cout = kernel.dim(0), kk = kernel.dim(2);
  AP3_REQUIRE_MSG(kernel.dim(1) == cin, "conv1d channel mismatch");
  AP3_REQUIRE_MSG(kk % 2 == 1, "conv1d kernel size must be odd (same padding)");
  AP3_REQUIRE(bias.dim(0) == cout);
  const Dispatch& d = dispatch();
  if (d.pack != 0) {
    return pp::with_pack_width(d.pack, [&]<int N>() {
      return d.accum == Accum::kFloat64
                 ? conv1d_packed<double, N>(x, kernel, bias, batch, cin, len,
                                            cout, kk)
                 : conv1d_packed<float, N>(x, kernel, bias, batch, cin, len,
                                           cout, kk);
    });
  }
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kk / 2);
  Tensor out({batch, cout, len});
  const float* xd = x.data();
  const float* kd = kernel.data();
  const float* bd = bias.data();
  float* od = out.data();
  const bool f64 = dispatch().accum == Accum::kFloat64;
  // One output element per index: acc starts at the bias and sweeps (ci, t)
  // in ascending order — the pre-refactor accumulation order.
  pp::parallel_for(pol(batch * cout * len, "tensor:conv1d"), [=](std::size_t e) {
    const std::size_t l = e % len;
    const std::size_t co = (e / len) % cout;
    const std::size_t b = e / (len * cout);
    double acc64 = static_cast<double>(bd[co]);
    float acc32 = bd[co];
    for (std::size_t ci = 0; ci < cin; ++ci) {
      for (std::size_t t = 0; t < kk; ++t) {
        const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(l) +
                                   static_cast<std::ptrdiff_t>(t) - half;
        if (src < 0 || src >= static_cast<std::ptrdiff_t>(len)) continue;
        const float kv = kd[(co * cin + ci) * kk + t];
        const float xv =
            xd[(b * cin + ci) * len + static_cast<std::size_t>(src)];
        if (f64)
          acc64 += static_cast<double>(kv) * xv;
        else
          acc32 += kv * xv;
      }
    }
    od[e] = f64 ? static_cast<float>(acc64) : acc32;
  });
  return out;
}

Tensor conv1d_backward(const Tensor& x, const Tensor& kernel,
                       const Tensor& grad_out, Tensor& grad_kernel,
                       Tensor& grad_bias) {
  const std::size_t batch = x.dim(0), cin = x.dim(1), len = x.dim(2);
  const std::size_t cout = kernel.dim(0), kk = kernel.dim(2);
  AP3_REQUIRE(grad_out.dim(0) == batch && grad_out.dim(1) == cout &&
              grad_out.dim(2) == len);
  AP3_REQUIRE(grad_kernel.same_shape(kernel));
  AP3_REQUIRE(grad_bias.dim(0) == cout);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kk / 2);
  const float* xd = x.data();
  const float* kd = kernel.data();
  const float* gd = grad_out.data();
  // Three race-free passes, one gradient tensor each; every output element
  // owns its full accumulation, visiting contributions in the order of the
  // old single serial sweep so the bits do not move.
  float* gbd = grad_bias.data();
  pp::parallel_for(pol(cout, "tensor:conv1d:bwd_bias"), [=](std::size_t co) {
    float acc = gbd[co];
    for (std::size_t b = 0; b < batch; ++b)
      for (std::size_t l = 0; l < len; ++l) acc += gd[(b * cout + co) * len + l];
    gbd[co] = acc;
  });
  float* gkd = grad_kernel.data();
  pp::parallel_for(
      pol(cout * cin * kk, "tensor:conv1d:bwd_kernel"), [=](std::size_t e) {
        const std::size_t t = e % kk;
        const std::size_t ci = (e / kk) % cin;
        const std::size_t co = e / (kk * cin);
        float acc = gkd[e];
        for (std::size_t b = 0; b < batch; ++b) {
          for (std::size_t l = 0; l < len; ++l) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(l) +
                                       static_cast<std::ptrdiff_t>(t) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(len)) continue;
            acc += gd[(b * cout + co) * len + l] *
                   xd[(b * cin + ci) * len + static_cast<std::size_t>(src)];
          }
        }
        gkd[e] = acc;
      });
  Tensor grad_in({batch, cin, len});
  float* gid = grad_in.data();
  pp::parallel_for(
      pol(batch * cin * len, "tensor:conv1d:bwd_in"), [=](std::size_t e) {
        const std::size_t src = e % len;
        const std::size_t ci = (e / len) % cin;
        const std::size_t b = e / (len * cin);
        float acc = 0.0f;
        // t descending makes l = src - t + half ascend, matching the old
        // sweep's per-(co) visit order.
        for (std::size_t co = 0; co < cout; ++co) {
          for (std::size_t ti = kk; ti-- > 0;) {
            const std::ptrdiff_t l = static_cast<std::ptrdiff_t>(src) -
                                     static_cast<std::ptrdiff_t>(ti) + half;
            if (l < 0 || l >= static_cast<std::ptrdiff_t>(len)) continue;
            acc += gd[(b * cout + co) * len + static_cast<std::size_t>(l)] *
                   kd[(co * cin + ci) * kk + ti];
          }
        }
        gid[e] = acc;
      });
  return grad_in;
}

void add_inplace(Tensor& a, const Tensor& b) {
  AP3_REQUIRE(a.same_shape(b));
  float* ad = a.data();
  const float* bd = b.data();
  pp::parallel_for(pol(a.size(), "tensor:add"),
                   [=](std::size_t i) { ad[i] += bd[i]; });
}

void scale_inplace(Tensor& a, float s) {
  float* ad = a.data();
  pp::parallel_for(pol(a.size(), "tensor:scale"),
                   [=](std::size_t i) { ad[i] *= s; });
}

void bias_add_rows(Tensor& out, const Tensor& bias) {
  AP3_REQUIRE(out.rank() == 2 && bias.rank() == 1 &&
              out.dim(1) == bias.dim(0));
  const std::size_t n = out.dim(1);
  float* od = out.data();
  const float* bd = bias.data();
  pp::parallel_for(pol(out.size(), "tensor:bias_add"),
                   [=](std::size_t e) { od[e] += bd[e % n]; });
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  float* od = out.data();
  pp::parallel_for(pol(out.size(), "tensor:relu"), [=](std::size_t i) {
    if (od[i] < 0.0f) od[i] = 0.0f;
  });
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  AP3_REQUIRE(x.same_shape(grad_out));
  Tensor out = grad_out;
  const float* xd = x.data();
  float* od = out.data();
  pp::parallel_for(pol(out.size(), "tensor:relu:bwd"), [=](std::size_t i) {
    if (xd[i] <= 0.0f) od[i] = 0.0f;
  });
  return out;
}

float mse(const Tensor& pred, const Tensor& target) {
  AP3_REQUIRE(pred.same_shape(target));
  const float* pd = pred.data();
  const float* td = target.data();
  const double acc = pp::parallel_reduce(
      pol(pred.size(), "tensor:mse"),
      [=](std::size_t i, double& a) {
        const double d = static_cast<double>(pd[i]) - td[i];
        a += d * d;
      },
      0.0);
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

Tensor mse_grad(const Tensor& pred, const Tensor& target) {
  AP3_REQUIRE(pred.same_shape(target));
  Tensor grad(pred.shape());
  const float scale = 2.0f / static_cast<float>(pred.size());
  const float* pd = pred.data();
  const float* td = target.data();
  float* gd = grad.data();
  pp::parallel_for(pol(pred.size(), "tensor:mse:grad"), [=](std::size_t i) {
    gd[i] = scale * (pd[i] - td[i]);
  });
  return grad;
}

}  // namespace ap3::tensor
