# Empty compiler generated dependencies file for bench_ai_physics.
# This may be replaced when dependencies are built.
