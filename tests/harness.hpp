// Shared scaffolding for AP3ESM tests.
//
// Every multi-rank test in this repository follows the same shape: launch N
// rank-threads with par::run, decompose a global id space, exchange data, and
// compare fields — often under a deterministic fault schedule and often with
// snapshot files that must be cleaned up on any exit path. This header keeps
// that boilerplate in one place:
//
//   - run_ranks(n, fn) / run_ranks(n, fault_plan, fn): rank launchers, the
//     second arming seed-driven fault injection (src/fault) on the World;
//   - fault-plan builders: named presets (drop_plan, reorder_plan,
//     heavy_fault_plan) plus random_no_drop_plan(seed) for fuzzing — every
//     plan is a pure function of its seed, so failures replay exactly;
//   - TempDir: RAII mkdtemp directory removed (recursively) on destruction;
//   - ulp_distance / expect_fields_equal: units-in-the-last-place field
//     comparison, with max_ulp = 0 meaning bit-exact;
//   - block_ids / cyclic_ids: the two decompositions the MCT tests use.
#pragma once

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "fault/fault.hpp"
#include "par/comm.hpp"

namespace ap3::testing {

// ---- rank launchers --------------------------------------------------------

/// Launch `fn` on `nranks` rank-threads sharing one fault-free World.
inline void run_ranks(int nranks, const std::function<void(par::Comm&)>& fn) {
  par::run(nranks, fn);
}

/// Same, with a deterministic fault schedule armed on the World's transport.
inline void run_ranks(int nranks, const fault::FaultConfig& fault_plan,
                      const std::function<void(par::Comm&)>& fn) {
  par::WorldOptions options;
  options.fault = fault_plan;
  par::run(nranks, options, fn);
}

// ---- fault-plan builders ---------------------------------------------------

/// Drop-only plan: every loss must be recovered by timeout + retransmission.
inline fault::FaultConfig drop_plan(std::uint64_t seed, double rate = 0.2) {
  fault::FaultConfig plan;
  plan.seed = seed;
  plan.drop_rate = rate;
  plan.retry_timeout_microseconds = 200;
  return plan;
}

/// Reordering plan (delay + duplicate, no drops): exercises the sequenced
/// receive path without depending on retransmission timeouts.
inline fault::FaultConfig reorder_plan(std::uint64_t seed) {
  fault::FaultConfig plan;
  plan.seed = seed;
  plan.duplicate_rate = 0.15;
  plan.delay_rate = 0.25;
  plan.delay_deliveries = 3;
  return plan;
}

/// Everything at once, at rates high enough that a run of a few hundred
/// messages is guaranteed to hit every fault class.
inline fault::FaultConfig heavy_fault_plan(std::uint64_t seed) {
  fault::FaultConfig plan;
  plan.seed = seed;
  plan.drop_rate = 0.15;
  plan.duplicate_rate = 0.15;
  plan.delay_rate = 0.2;
  plan.delay_deliveries = 2;
  plan.stall_rate = 0.1;
  plan.stall_microseconds = 50;
  plan.retry_timeout_microseconds = 200;
  return plan;
}

/// Fuzzing plan: random duplicate/delay/stall rates derived from `seed`, no
/// drops. Used by the property tests to assert that results are identical to
/// a fault-free run under arbitrary reorderings.
inline fault::FaultConfig random_no_drop_plan(std::uint64_t seed) {
  Rng rng(seed ^ 0xfa017ULL);
  fault::FaultConfig plan;
  plan.seed = rng.next_u64();
  plan.duplicate_rate = rng.uniform(0.0, 0.2);
  plan.delay_rate = rng.uniform(0.05, 0.35);
  plan.delay_deliveries = 1 + static_cast<int>(rng.uniform_int(4));
  plan.stall_rate = rng.uniform(0.0, 0.1);
  plan.stall_microseconds = 20;
  return plan;
}

// ---- filesystem ------------------------------------------------------------

/// RAII temporary directory: created unique under $TMPDIR (or /tmp) via
/// mkdtemp, removed recursively — contents included — on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "ap3_test") {
    std::string pattern =
        (std::filesystem::temp_directory_path() / (prefix + ".XXXXXX"))
            .string();
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    if (::mkdtemp(buffer.data()) == nullptr)
      throw std::runtime_error("TempDir: mkdtemp failed for " + pattern);
    path_ = buffer.data();
  }
  ~TempDir() {
    std::error_code ec;  // best effort; never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  /// Path of `name` inside the directory (the file itself is not created).
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// ---- field comparison ------------------------------------------------------

/// Units-in-the-last-place distance between two doubles. 0 iff bit-identical
/// up to +0/-0; max() for NaNs or infinities of opposite sign.
inline std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // also +0 vs -0
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  // Map the IEEE-754 bit patterns onto a monotonically ordered unsigned line.
  const auto ordered = [](double x) {
    const auto u = std::bit_cast<std::uint64_t>(x);
    constexpr std::uint64_t kSign = 0x8000000000000000ULL;
    return (u & kSign) ? kSign - (u & ~kSign) : u + kSign;
  };
  const std::uint64_t ua = ordered(a), ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

/// Element-wise ULP comparison of two fields; `max_ulp` = 0 demands
/// bit-exactness. Reports the first few offending indices with values.
inline void expect_fields_equal(std::span<const double> actual,
                                std::span<const double> expected,
                                std::uint64_t max_ulp = 0,
                                const std::string& label = "field") {
  ASSERT_EQ(actual.size(), expected.size()) << label << ": size mismatch";
  int reported = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const std::uint64_t ulp = ulp_distance(actual[i], expected[i]);
    if (ulp <= max_ulp) continue;
    ADD_FAILURE() << label << "[" << i << "]: " << actual[i]
                  << " != " << expected[i] << " (" << ulp << " ulp > "
                  << max_ulp << ")";
    if (++reported >= 5) {
      ADD_FAILURE() << label << ": further mismatches suppressed";
      return;
    }
  }
}

// ---- id decompositions -----------------------------------------------------

/// Contiguous block of `n` global ids owned by `rank` out of `nranks`
/// (remainder cells go to the low ranks), as used for source decompositions.
inline std::vector<std::int64_t> block_ids(std::int64_t n, int rank,
                                           int nranks) {
  const std::int64_t base = n / nranks, extra = n % nranks;
  const std::int64_t lo =
      rank * base + std::min<std::int64_t>(rank, extra);
  const std::int64_t count = base + (rank < extra ? 1 : 0);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) ids[static_cast<std::size_t>(i)] = lo + i;
  return ids;
}

/// Round-robin (cyclic) ownership: global id g lives on rank g % nranks.
inline std::vector<std::int64_t> cyclic_ids(std::int64_t n, int rank,
                                            int nranks) {
  std::vector<std::int64_t> ids;
  for (std::int64_t g = rank; g < n; g += nranks) ids.push_back(g);
  return ids;
}

}  // namespace ap3::testing
