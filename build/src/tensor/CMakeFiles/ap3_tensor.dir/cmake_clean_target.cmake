file(REMOVE_RECURSE
  "libap3_tensor.a"
)
