// Property-based test sweeps (parameterized gtest): invariants that must
// hold across resolutions, rank counts, seeds, and magnitudes — the
// repository's equivalent of the paper's bit-for-bit and non-bit-for-bit
// validation discipline.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>

#include "atm/dycore.hpp"
#include "balance/balance.hpp"
#include "base/constants.hpp"
#include "atm/vortex.hpp"
#include "base/rng.hpp"
#include "coupler/driver.hpp"
#include "fault/fault.hpp"
#include "grid/halo.hpp"
#include "harness.hpp"
#include "grid/icosahedral.hpp"
#include "grid/partition.hpp"
#include "base/hash.hpp"
#include "mct/rearranger.hpp"
#include "mct/router.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"
#include "par/topology.hpp"
#include "pp/pack.hpp"
#include "precision/group_scaled.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ap3;

// --- property: atmosphere mass conservation across (mesh, ranks) -------------

struct AtmCase {
  int mesh_n;
  int ranks;
};
class AtmMassProperty : public ::testing::TestWithParam<AtmCase> {};

TEST_P(AtmMassProperty, MassInvariantUnderDecomposition) {
  const AtmCase param = GetParam();
  par::run(param.ranks, [&](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = param.mesh_n;
    config.nlev = 4;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::Dycore dycore(comm, config, mesh);
    atm::seed_vortex(dycore, atm::VortexSpec{});
    const double mass0 = dycore.total_mass();
    for (int s = 0; s < 12; ++s)
      dycore.step_dynamics(config.dycore_dt_seconds());
    EXPECT_NEAR(dycore.total_mass() / mass0, 1.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtmMassProperty,
                         ::testing::Values(AtmCase{4, 1}, AtmCase{4, 3},
                                           AtmCase{6, 1}, AtmCase{6, 4},
                                           AtmCase{8, 2}, AtmCase{8, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.mesh_n) +
                                  "_r" + std::to_string(info.param.ranks);
                         });

// --- property: partition completeness for arbitrary sizes ------------------------

class PartitionProperty
    : public ::testing::TestWithParam<std::pair<int64_t, int>> {};

TEST_P(PartitionProperty, CoversWithoutGapsOrOverlap) {
  const auto [n, parts] = GetParam();
  std::int64_t covered = 0;
  for (int r = 0; r < parts; ++r) {
    const grid::Range1D range = grid::partition_1d(n, parts, r);
    covered += range.size();
    for (std::int64_t i = range.begin; i < range.end; ++i)
      EXPECT_EQ(grid::owner_1d(n, parts, i), r);
  }
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(std::make_pair<int64_t, int>(1, 1),
                      std::make_pair<int64_t, int>(7, 7),
                      std::make_pair<int64_t, int>(100, 7),
                      std::make_pair<int64_t, int>(1009, 13),
                      std::make_pair<int64_t, int>(65536, 31),
                      std::make_pair<int64_t, int>(999983, 64)));

// --- property: router moves every shared point exactly once ---------------------

class RouterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterProperty, RandomDecompositionsRouteCompletely) {
  // Two random decompositions of the same id space: the union of all ranks'
  // recv plans must cover every id exactly once, and per-rank send/recv
  // volumes must be consistent.
  Rng rng(GetParam());
  const int nranks = 5;
  const std::int64_t n = 400;
  std::vector<std::vector<std::int64_t>> src_ids(nranks), dst_ids(nranks);
  for (std::int64_t g = 0; g < n; ++g) {
    src_ids[rng.uniform_int(nranks)].push_back(g);
    dst_ids[rng.uniform_int(nranks)].push_back(g);
  }
  const mct::GlobalSegMap src = mct::GlobalSegMap::from_all(src_ids);
  const mct::GlobalSegMap dst = mct::GlobalSegMap::from_all(dst_ids);

  std::int64_t total_sent = 0, total_received = 0;
  for (int r = 0; r < nranks; ++r) {
    const mct::Router router = mct::Router::build(r, src, dst);
    total_sent += router.points_sent();
    total_received += router.points_received();
    // Receive positions are unique within the rank.
    std::set<std::int64_t> positions;
    for (const auto& [peer, plan] : router.recv_plan())
      for (auto pos : plan) EXPECT_TRUE(positions.insert(pos).second);
    EXPECT_EQ(static_cast<std::int64_t>(positions.size()),
              router.points_received());
  }
  EXPECT_EQ(total_sent, n);
  EXPECT_EQ(total_received, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

// --- property: rearranged data equals a gather/scatter oracle --------------------

class RearrangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RearrangeProperty, MatchesOracleForRandomDecompositions) {
  const int seed = GetParam();
  par::run(4, [&](par::Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(seed));
    const std::int64_t n = 120;
    std::vector<std::vector<std::int64_t>> src_ids(4), dst_ids(4);
    for (std::int64_t g = 0; g < n; ++g) {
      src_ids[rng.uniform_int(4)].push_back(g);
      dst_ids[rng.uniform_int(4)].push_back(g);
    }
    const mct::GlobalSegMap src_map = mct::GlobalSegMap::from_all(src_ids);
    const mct::GlobalSegMap dst_map = mct::GlobalSegMap::from_all(dst_ids);
    mct::Rearranger rearranger(
        comm, mct::Router::build(comm.rank(), src_map, dst_map));

    // Field value = deterministic function of gid.
    const auto my_src = src_map.local_ids(comm.rank());
    mct::AttrVect src({"x"}, my_src.size());
    for (std::size_t k = 0; k < my_src.size(); ++k)
      src.field("x")[k] = 7.5 * static_cast<double>(my_src[k]) + 0.25;
    const auto my_dst = dst_map.local_ids(comm.rank());
    mct::AttrVect dst({"x"}, my_dst.size());
    rearranger.rearrange(src, dst);
    for (std::size_t k = 0; k < my_dst.size(); ++k)
      EXPECT_EQ(dst.field("x")[k], 7.5 * static_cast<double>(my_dst[k]) + 0.25);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RearrangeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- property: mixed precision relative error bounded across magnitudes ----------

class PrecisionProperty : public ::testing::TestWithParam<double> {};

TEST_P(PrecisionProperty, RelativeErrorBoundedAtAnyMagnitude) {
  const double magnitude = GetParam();
  Rng rng(42);
  std::vector<double> values(512);
  for (double& v : values) v = magnitude * (1.0 + 0.8 * rng.normal());
  EXPECT_LT(precision::max_relative_roundtrip_error(values, 32), 5e-7)
      << "magnitude " << magnitude;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, PrecisionProperty,
                         ::testing::Values(1e-12, 1e-6, 1e-3, 1.0, 1e3, 1e7,
                                           1e12));

// --- property: icosahedral mesh invariants over subdivision -----------------------

class MeshProperty : public ::testing::TestWithParam<int> {};

TEST_P(MeshProperty, AreasPositiveAndBounded) {
  grid::IcosahedralGrid mesh(GetParam());
  const double mean =
      4.0 * constants::kPi / static_cast<double>(mesh.num_cells());
  for (std::size_t c = 0; c < mesh.num_cells(); ++c) {
    EXPECT_GT(mesh.cell_area(c), 0.2 * mean);
    EXPECT_LT(mesh.cell_area(c), 3.0 * mean);
  }
}

TEST_P(MeshProperty, EveryCellReachableFromCellZero) {
  // Flood fill over neighbor links must reach the whole sphere (mesh is
  // connected) — a structural property the halo construction relies on.
  grid::IcosahedralGrid mesh(GetParam());
  std::vector<bool> seen(mesh.num_cells(), false);
  std::vector<std::uint32_t> queue = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const auto c = queue.back();
    queue.pop_back();
    for (auto nb : mesh.cell_neighbors(c)) {
      if (!seen[nb]) {
        seen[nb] = true;
        ++visited;
        queue.push_back(nb);
      }
    }
  }
  EXPECT_EQ(visited, mesh.num_cells());
}

INSTANTIATE_TEST_SUITE_P(Subdivision, MeshProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --- property: ocean stability across grids, forcing, rank counts -----------------

struct OcnCase {
  int nx, ny, nz, ranks;
  double taux;
};
class OcnStabilityProperty : public ::testing::TestWithParam<OcnCase> {};

TEST_P(OcnStabilityProperty, BoundedAndVolumeConserving) {
  const OcnCase param = GetParam();
  par::run(param.ranks, [&](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{param.nx, param.ny, param.nz};
    ocn::OcnModel model(comm, config);
    mct::AttrVect x2o(ocn::OcnModel::import_fields(), model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = param.taux;
    model.import_state(x2o);
    model.run(0.0, config.baroclinic_dt_seconds() * 15);
    EXPECT_TRUE(std::isfinite(model.max_current()));
    EXPECT_LT(model.max_current(), 10.0);
    EXPECT_LT(std::abs(model.total_volume()), 1e4);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OcnStabilityProperty,
    ::testing::Values(OcnCase{32, 24, 5, 1, 0.1}, OcnCase{32, 24, 5, 4, 0.1},
                      OcnCase{48, 36, 8, 2, 0.4}, OcnCase{64, 48, 6, 3, 0.2},
                      OcnCase{40, 30, 10, 2, -0.3}),
    [](const auto& info) {
      return "g" + std::to_string(info.param.nx) + "x" +
             std::to_string(info.param.ny) + "_r" +
             std::to_string(info.param.ranks) +
             (info.param.taux < 0 ? "_west" : "_east");
    });

// --- property: block halo matches a global-array oracle ---------------------------

struct HaloCase {
  int nx, ny, px, py;
};
class HaloProperty : public ::testing::TestWithParam<HaloCase> {};

TEST_P(HaloProperty, GhostsMatchGlobalOracle) {
  const HaloCase param = GetParam();
  par::run(param.px * param.py, [&](par::Comm& comm) {
    grid::BlockHalo halo(comm, param.nx, param.ny, param.px, param.py, true);
    std::vector<double> field(
        static_cast<size_t>((halo.nx_local() + 2) * (halo.ny_local() + 2)),
        0.0);
    auto value_of = [&](int gi, int gj) {
      return 1000.0 * gj + gi;
    };
    for (int j = 0; j < halo.ny_local(); ++j)
      for (int i = 0; i < halo.nx_local(); ++i)
        field[halo.halo_index(i, j)] = value_of(halo.x0() + i, halo.y0() + j);
    halo.exchange(field);

    // Oracle: periodic x; closed south (zero-gradient); north fold.
    auto oracle = [&](int gi, int gj) {
      gi = (gi % param.nx + param.nx) % param.nx;
      if (gj < 0) gj = 0;
      if (gj >= param.ny) {
        gi = param.nx - 1 - gi;
        gj = param.ny - 1;
      }
      return value_of(gi, gj);
    };
    for (int j = 0; j < halo.ny_local(); ++j) {
      EXPECT_EQ(field[halo.halo_index(-1, j)],
                oracle(halo.x0() - 1, halo.y0() + j));
      EXPECT_EQ(field[halo.halo_index(halo.nx_local(), j)],
                oracle(halo.x0() + halo.nx_local(), halo.y0() + j));
    }
    for (int i = 0; i < halo.nx_local(); ++i) {
      EXPECT_EQ(field[halo.halo_index(i, -1)],
                oracle(halo.x0() + i, halo.y0() - 1));
      EXPECT_EQ(field[halo.halo_index(i, halo.ny_local())],
                oracle(halo.x0() + i, halo.y0() + halo.ny_local()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HaloProperty,
    ::testing::Values(HaloCase{16, 8, 1, 1}, HaloCase{16, 8, 2, 1},
                      HaloCase{16, 8, 1, 2}, HaloCase{16, 8, 2, 2},
                      HaloCase{16, 8, 4, 2}, HaloCase{24, 12, 3, 2},
                      HaloCase{18, 10, 2, 3}),
    [](const auto& info) {
      return std::to_string(info.param.nx) + "x" + std::to_string(info.param.ny) +
             "_p" + std::to_string(info.param.px) + "x" +
             std::to_string(info.param.py);
    });

// --- property: vortex tracker finds seeds anywhere --------------------------------

class VortexProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(VortexProperty, TrackerLocatesSeedWithinOneCell) {
  const auto [lon, lat] = GetParam();
  par::run(2, [&, lon = lon, lat = lat](par::Comm& comm) {
    atm::AtmConfig config;
    config.mesh_n = 8;
    config.nlev = 4;
    grid::IcosahedralGrid mesh(config.mesh_n);
    atm::Dycore dycore(comm, config, mesh);
    atm::VortexSpec spec;
    spec.lon_deg = lon;
    spec.lat_deg = lat;
    atm::seed_vortex(dycore, spec);
    const atm::VortexFix fix = atm::track_vortex(dycore, comm, lon, lat, 1500.0);
    ASSERT_TRUE(fix.found);
    // The minimum must sit within about one cell spacing of the seed.
    const double spacing_km = grid::IcosaCounts::resolution_km(config.mesh_n);
    EXPECT_LT(atm::track_distance_km(lon, lat, fix.lon_deg, fix.lat_deg),
              1.6 * spacing_km);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Locations, VortexProperty,
    ::testing::Values(std::make_pair(130.0, 15.0), std::make_pair(290.0, 25.0),
                      std::make_pair(60.0, -18.0), std::make_pair(0.0, 40.0),
                      std::make_pair(200.0, -35.0)));

// --- fault-injection fuzz ----------------------------------------------------
//
// Property: the transport's recovery machinery is invisible to correct
// programs. Under a randomly drawn no-drop fault plan (duplicates, delays/
// reorderings, sender stalls — everything that perturbs delivery order
// without requiring retransmission timeouts), both rearranger strategies and
// the coupled driver must produce results identical to a fault-free run.

class FaultPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultPlanProperty, RearrangeIdenticalUnderRandomFaultPlan) {
  const fault::FaultConfig plan =
      ap3::testing::random_no_drop_plan(static_cast<std::uint64_t>(GetParam()));
  for (const auto method :
       {mct::Strategy::kAlltoallv, mct::Strategy::kSplitPhase}) {
    ap3::testing::run_ranks(4, plan, [method](par::Comm& comm) {
      const std::int64_t n = 64;
      std::vector<std::vector<std::int64_t>> src_ids(4), dst_ids(4);
      for (int r = 0; r < 4; ++r) {
        src_ids[static_cast<size_t>(r)] = ap3::testing::block_ids(n, r, 4);
        dst_ids[static_cast<size_t>(r)] = ap3::testing::cyclic_ids(n, r, 4);
      }
      const mct::GlobalSegMap src_map = mct::GlobalSegMap::from_all(src_ids);
      const mct::GlobalSegMap dst_map = mct::GlobalSegMap::from_all(dst_ids);
      const mct::Router router =
          mct::Router::build(comm.rank(), src_map, dst_map);
      const mct::Rearranger rearranger(comm, router);

      mct::AttrVect src({"t", "u"}, 16);
      const auto my_src = src_map.local_ids(comm.rank());
      for (size_t k = 0; k < my_src.size(); ++k) {
        src.field("t")[k] = static_cast<double>(my_src[k]);
        src.field("u")[k] = 1000.0 + static_cast<double>(my_src[k]);
      }
      // Two passes back to back: recovery state (sequence counters, delayed
      // queues) must not leak between rearrange calls either.
      for (int pass = 0; pass < 2; ++pass) {
        mct::AttrVect dst({"t", "u"}, 16);
        rearranger.rearrange(src, dst, method);
        const auto my_dst = dst_map.local_ids(comm.rank());
        for (size_t k = 0; k < my_dst.size(); ++k) {
          ASSERT_EQ(dst.field("t")[k], static_cast<double>(my_dst[k]))
              << "pass " << pass;
          ASSERT_EQ(dst.field("u")[k], 1000.0 + static_cast<double>(my_dst[k]));
        }
      }
      comm.barrier();
      // Sanity: the plan actually perturbed something at least occasionally
      // is checked across the suite, not per seed (rates can draw low).
      const fault::FaultStats stats = comm.world().fault_stats();
      EXPECT_EQ(stats.recovered(), stats.recoverable());
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, FaultPlanProperty, ::testing::Range(0, 50));

class CoupledFaultProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoupledFaultProperty, TrajectoryIdenticalUnderRandomFaultPlan) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 4;  // 320 cells: smallest coupled setup
  config.atm.nlev = 4;
  config.ocn.grid = grid::TripolarConfig{24, 18, 4};
  config.ocn_couple_ratio = 2;

  static std::uint64_t baseline_hash = 0;  // fault-free oracle, computed once
  if (baseline_hash == 0) {
    ap3::testing::run_ranks(2, [&](par::Comm& comm) {
      cpl::CoupledModel model(comm, config);
      model.run_windows(2);
      const std::uint64_t h = model.state_hash();  // collective
      if (comm.rank() == 0) baseline_hash = h;
    });
  }

  const fault::FaultConfig plan = ap3::testing::random_no_drop_plan(
      0x10ad5ULL + static_cast<std::uint64_t>(GetParam()));
  ap3::testing::run_ranks(2, plan, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    model.run_windows(2);
    const std::uint64_t h = model.state_hash();  // collective
    if (comm.rank() == 0)
      EXPECT_EQ(h, baseline_hash)
          << "coupled trajectory diverged under fault plan " << GetParam();
  });
}

INSTANTIATE_TEST_SUITE_P(Plans, CoupledFaultProperty, ::testing::Range(0, 5));

// --- property: pack width never changes kernel bits ------------------------
//
// Random (M, N, K, pack width, accumulation width, space) tuples: the packed
// matmul_nt / conv1d paths must reproduce the pack=0 scalar reference
// bit-for-bit. This is the fuzz companion to tests/test_pack.cpp — shapes are
// drawn so most draws have masked tails in every dimension.

class PackFuzzProperty : public ::testing::TestWithParam<int> {};

namespace {
tensor::Tensor fuzz_tensor(std::vector<std::size_t> shape, Rng& rng) {
  tensor::Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

std::uint64_t bits_of(const tensor::Tensor& t) {
  return fnv1a(kFnvBasis, t.data(), t.size() * sizeof(float));
}
}  // namespace

TEST_P(PackFuzzProperty, PackedMatmulAndConvMatchScalarReferenceBitwise) {
  Rng rng(0x9acdULL + static_cast<std::uint64_t>(GetParam()) * 7919u);
  constexpr std::size_t widths[] = {1, 2, 4, 8, 16};
  constexpr pp::ExecSpace spaces[] = {pp::ExecSpace::kSerial,
                                      pp::ExecSpace::kHostThreads,
                                      pp::ExecSpace::kSunwayCPE};

  const std::size_t m = 1 + rng.uniform_int(24);
  const std::size_t n = 1 + rng.uniform_int(33);
  const std::size_t k = 1 + rng.uniform_int(40);
  const tensor::Tensor a = fuzz_tensor({m, k}, rng);
  const tensor::Tensor w = fuzz_tensor({n, k}, rng);

  const std::size_t batch = 1 + rng.uniform_int(3);
  const std::size_t cin = 1 + rng.uniform_int(3);
  const std::size_t len = 1 + rng.uniform_int(21);
  const std::size_t cout = 1 + rng.uniform_int(4);
  const std::size_t kk = 1 + 2 * rng.uniform_int(3);  // odd: 1, 3, 5
  const tensor::Tensor x = fuzz_tensor({batch, cin, len}, rng);
  const tensor::Tensor kern = fuzz_tensor({cout, cin, kk}, rng);
  const tensor::Tensor bias = fuzz_tensor({cout}, rng);

  const auto accum = rng.uniform_int(2) == 0 ? tensor::Accum::kFloat32
                                             : tensor::Accum::kFloat64;
  std::uint64_t ref_mm = 0, ref_cv = 0;
  {
    tensor::DispatchScope scope({pp::ExecSpace::kSerial, 0, accum, 0});
    ref_mm = bits_of(tensor::matmul_nt(a, w));
    ref_cv = bits_of(tensor::conv1d(x, kern, bias));
  }
  const std::size_t width = widths[rng.uniform_int(5)];
  const pp::ExecSpace space = spaces[rng.uniform_int(3)];
  tensor::DispatchScope scope({space, 0, accum, width});
  EXPECT_EQ(bits_of(tensor::matmul_nt(a, w)), ref_mm)
      << "matmul m=" << m << " n=" << n << " k=" << k << " width=" << width
      << " space=" << pp::to_string(space);
  EXPECT_EQ(bits_of(tensor::conv1d(x, kern, bias)), ref_cv)
      << "conv batch=" << batch << " cin=" << cin << " len=" << len
      << " cout=" << cout << " kk=" << kk << " width=" << width
      << " space=" << pp::to_string(space);
}

INSTANTIATE_TEST_SUITE_P(Tuples, PackFuzzProperty, ::testing::Range(0, 40));

// --- property: hierarchical collectives are bitwise-equal to flat ----------------

// Random (ranks, supernode_size, payload, op, algo-routing) tuples: the
// topology-staged allreduce and alltoallv must return bytes identical to the
// flat wire algorithms — including non-dividing supernode sizes, empty
// payload rows, and sums whose result depends on fold order unless the
// canonical supernode-blocked order is honored on both paths.
class HierFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierFuzzProperty, CollectivesMatchFlatBitwise) {
  Rng rng(0x9e3779b9u ^ static_cast<std::uint64_t>(GetParam()));
  const int nranks = 2 + static_cast<int>(rng.uniform_int(7));     // 2..8
  const int supernode_size = 1 + static_cast<int>(rng.uniform_int(5));
  const std::size_t payload = rng.uniform_int(65);                 // 0..64
  const par::ReduceOp op = std::array{par::ReduceOp::kSum, par::ReduceOp::kMin,
                                      par::ReduceOp::kMax}[rng.uniform_int(3)];
  // Route either through the communicator's default algorithm or through a
  // per-call policy override — both entry points must agree. Both sides use
  // the SAME topology-attached communicator (the canonical supernode-blocked
  // fold order is a property of the topology, shared by both algorithms);
  // only the wire algorithm differs.
  const bool per_call = rng.uniform_int(2) == 1;
  const std::uint64_t value_seed = rng.uniform_int(1u << 30);

  ap3::testing::run_ranks(nranks, [&](par::Comm& base_comm) {
    auto topo = std::make_shared<par::Topology>(
        par::Topology::clustered(nranks, supernode_size));
    par::Comm flat_comm =
        base_comm.with_topology(topo, par::CollectiveAlgo::kFlat);
    par::Comm hier_comm = base_comm.with_topology(
        topo, per_call ? par::CollectiveAlgo::kFlat
                       : par::CollectiveAlgo::kHierarchical);
    const par::CollectivePolicy policy =
        per_call ? par::CollectivePolicy{par::CollectiveAlgo::kHierarchical}
                 : par::CollectivePolicy{};

    // Allreduce with exponent-spread values (fold-order witness).
    std::vector<double> in(payload), flat_out(payload), hier_out(payload);
    for (std::size_t i = 0; i < payload; ++i)
      in[i] = std::ldexp(std::sin(static_cast<double>(
                             value_seed % 997 + i * 13 +
                             static_cast<std::size_t>(flat_comm.rank()) * 71)),
                         static_cast<int>(i % 31) - 15);
    flat_comm.allreduce(std::span<const double>(in), std::span<double>(flat_out),
                        op);
    hier_comm.allreduce(std::span<const double>(in), std::span<double>(hier_out),
                        op, policy);
    for (std::size_t i = 0; i < payload; ++i)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(flat_out[i]),
                std::bit_cast<std::uint64_t>(hier_out[i]))
          << "allreduce i=" << i << " ranks=" << nranks
          << " ss=" << supernode_size;

    // Alltoallv with ragged per-peer counts (zeros included).
    std::vector<double> send;
    std::vector<std::size_t> counts(static_cast<std::size_t>(nranks));
    for (int peer = 0; peer < nranks; ++peer) {
      const std::size_t c =
          (static_cast<std::size_t>(flat_comm.rank()) * 7 +
           static_cast<std::size_t>(peer) * 3 + value_seed) %
          5;
      counts[static_cast<std::size_t>(peer)] = c;
      for (std::size_t k = 0; k < c; ++k)
        send.push_back(static_cast<double>(flat_comm.rank() * 10000 +
                                           peer * 100 + static_cast<int>(k)));
    }
    std::vector<std::size_t> flat_rc, hier_rc;
    const std::vector<double> flat_recv = flat_comm.alltoallv(
        std::span<const double>(send), std::span<const std::size_t>(counts),
        flat_rc);
    const std::vector<double> hier_recv = hier_comm.alltoallv(
        std::span<const double>(send), std::span<const std::size_t>(counts),
        hier_rc, policy);
    ASSERT_EQ(flat_rc, hier_rc);
    ASSERT_EQ(flat_recv.size(), hier_recv.size());
    for (std::size_t i = 0; i < flat_recv.size(); ++i)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(flat_recv[i]),
                std::bit_cast<std::uint64_t>(hier_recv[i]))
          << "alltoallv i=" << i << " ranks=" << nranks
          << " ss=" << supernode_size;
  });
}

INSTANTIATE_TEST_SUITE_P(Tuples, HierFuzzProperty, ::testing::Range(0, 30));

// --- property: ghost-aware weighted cuts -------------------------------------
//
// Random (grid, rank-grid, weights, old cuts, measured cost, ghost model)
// tuples for the runtime repartitioner. Three invariants: (1) the chosen cut
// plan exactly covers the grid with nonempty blocks; (2) ghost_cell_count
// matches a brute-force per-cell walk of the halo ring under the tripolar
// exchange topology (periodic E/W, folded north, closed south, no corners) —
// no ghost charged twice, none missed; (3) the ghost-aware choice is never
// worse than the ghost-blind greedy cut when both are scored by the
// ghost-aware per-rank cost (monotonicity: greedy is always a candidate).

class BalanceCutFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(BalanceCutFuzzProperty, GhostAwareCutsCoverCountAndDominate) {
  Rng rng(0xba1a4ceULL + static_cast<std::uint64_t>(GetParam()) * 104729u);
  const int nx = 8 + static_cast<int>(rng.uniform_int(33));  // 8..40
  const int ny = 6 + static_cast<int>(rng.uniform_int(27));  // 6..32
  const int px = 1 + static_cast<int>(rng.uniform_int(4));   // 1..4
  const int py = 1 + static_cast<int>(rng.uniform_int(4));   // 1..4
  const int nranks = px * py;

  // kmt-like integer weights with land (zero) cells and a heavy band — the
  // shape the ice/ocean compaction actually feeds the planner.
  std::vector<double> weight(static_cast<std::size_t>(nx) *
                             static_cast<std::size_t>(ny));
  const int band_begin = static_cast<int>(rng.uniform_int(ny));
  std::int64_t weight_total = 0;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      std::int64_t w = rng.uniform_int(4) == 0 ? 0 : 1 + rng.uniform_int(8);
      if (j >= band_begin && w > 0) w += 8;  // latitude band of extra load
      weight[static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
             static_cast<std::size_t>(i)] = static_cast<double>(w);
      weight_total += w;
    }

  // Old partition: uniform, or random nonempty cut lines.
  auto random_cuts = [&](int n, int parts) {
    std::vector<double> marginal(static_cast<std::size_t>(n));
    for (double& m : marginal) m = rng.uniform(0.1, 1.0);
    return grid::weighted_cuts(marginal, parts, /*nonempty=*/true);
  };
  const bool uniform_old = rng.uniform_int(2) == 0;
  const grid::BlockPartition2D old_partition =
      uniform_old
          ? grid::BlockPartition2D(nx, ny, px, py)
          : grid::BlockPartition2D(
                nx, ny, grid::BlockCuts{random_cuts(nx, px), random_cuts(ny, py)});

  balance::MeasuredCost cost;
  cost.per_rank_seconds.resize(static_cast<std::size_t>(nranks));
  for (double& s : cost.per_rank_seconds) s = rng.uniform(0.05, 0.5);
  // Half the tuples get one straggling rank, the trigger case.
  if (rng.uniform_int(2) == 0)
    cost.per_rank_seconds[rng.uniform_int(nranks)] *= 4.0;

  balance::GhostModel ghosts;
  ghosts.halo_width = 1 + static_cast<int>(rng.uniform_int(2));  // 1..2
  ghosts.cell_cost_factor = rng.uniform(0.05, 1.0);

  const balance::CutPlan plan =
      balance::plan_rebalance(weight, nx, ny, old_partition, cost, ghosts);

  // (1) Exact cover: strictly ascending boundaries spanning [0, n] on both
  // axes (nonempty blocks), and block areas tile the grid.
  ASSERT_EQ(plan.cuts.px(), px);
  ASSERT_EQ(plan.cuts.py(), py);
  EXPECT_EQ(plan.cuts.x.front(), 0);
  EXPECT_EQ(plan.cuts.x.back(), nx);
  EXPECT_EQ(plan.cuts.y.front(), 0);
  EXPECT_EQ(plan.cuts.y.back(), ny);
  for (std::size_t c = 1; c < plan.cuts.x.size(); ++c)
    EXPECT_LT(plan.cuts.x[c - 1], plan.cuts.x[c]);
  for (std::size_t c = 1; c < plan.cuts.y.size(); ++c)
    EXPECT_LT(plan.cuts.y[c - 1], plan.cuts.y[c]);
  const grid::BlockPartition2D next(nx, ny, plan.cuts);
  std::int64_t area = 0;
  for (int r = 0; r < nranks; ++r)
    area += next.x_range(r).size() * next.y_range(r).size();
  EXPECT_EQ(area, static_cast<std::int64_t>(nx) * ny);
  EXPECT_EQ(plan.total_weight, weight_total);
  EXPECT_GE(plan.moved_weight, 0);
  EXPECT_LE(plan.moved_weight, plan.total_weight);

  // (2) Ghost accounting vs a brute-force walk of each block's halo ring:
  // every slot is classified independently, so a double-charged or dropped
  // ghost in the closed-form count shows up as a mismatch.
  const int hw = ghosts.halo_width;
  for (int r = 0; r < nranks; ++r) {
    const grid::Range1D xr = next.x_range(r);
    const grid::Range1D yr = next.y_range(r);
    std::int64_t brute = 0;
    for (std::int64_t gj = yr.begin - hw; gj < yr.end + hw; ++gj)
      for (std::int64_t gi = xr.begin - hw; gi < xr.end + hw; ++gi) {
        const bool x_off = gi < xr.begin || gi >= xr.end;
        const bool y_off = gj < yr.begin || gj >= yr.end;
        if (!x_off && !y_off) continue;  // owned interior, not a ghost
        if (x_off && y_off) continue;    // corners are not exchanged
        if (y_off && gj < 0) continue;   // closed south: local fill, no data
        ++brute;  // E/W wrap periodically and the folded north is always open
      }
    EXPECT_EQ(brute,
              balance::ghost_cell_count(xr.size(), yr.size(), hw, yr.begin))
        << "rank " << r << " block " << xr.size() << "x" << yr.size()
        << " y0=" << yr.begin << " width=" << hw;
  }

  // (3) Monotonicity: score the ghost-blind greedy plan with the same
  // ghost-aware cost — the chosen plan's bottleneck must not exceed it
  // (greedy is candidate 0, so this holds exactly, no epsilon).
  const balance::CutPlan blind = balance::plan_rebalance(
      weight, nx, ny, old_partition, cost, balance::GhostModel{});
  auto max_of = [](const std::vector<double>& v) {
    double m = 0.0;
    for (const double s : v) m = std::max(m, s);
    return m;
  };
  const double chosen_max = max_of(balance::predicted_rank_seconds(
      weight, nx, ny, old_partition, cost, plan.cuts, ghosts));
  const double blind_max = max_of(balance::predicted_rank_seconds(
      weight, nx, ny, old_partition, cost, blind.cuts, ghosts));
  EXPECT_LE(chosen_max, blind_max);
  EXPECT_EQ(plan.predicted_max_seconds, chosen_max);
}

INSTANTIATE_TEST_SUITE_P(Tuples, BalanceCutFuzzProperty,
                         ::testing::Range(0, 20));

}  // namespace
