#include "grid/partition.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace ap3::grid {

Range1D partition_1d(std::int64_t n, int parts, int rank) {
  AP3_REQUIRE(parts > 0 && rank >= 0 && rank < parts);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t r = rank;
  const std::int64_t begin = r * base + std::min<std::int64_t>(r, extra);
  const std::int64_t len = base + (r < extra ? 1 : 0);
  return {begin, begin + len};
}

int owner_1d(std::int64_t n, int parts, std::int64_t index) {
  AP3_REQUIRE(index >= 0 && index < n);
  const std::int64_t base = n / parts;
  const std::int64_t extra = n % parts;
  const std::int64_t cutoff = extra * (base + 1);
  if (index < cutoff) return static_cast<int>(index / (base + 1));
  return static_cast<int>(extra + (index - cutoff) / base);
}

std::vector<std::int64_t> weighted_cuts(std::span<const double> weights,
                                        int parts, bool nonempty) {
  AP3_REQUIRE(parts >= 1);
  const auto n = static_cast<std::int64_t>(weights.size());
  AP3_REQUIRE_MSG(!nonempty || n >= parts,
                  "cannot cut " << n << " elements into " << parts
                                << " non-empty pieces");
  double total = 0.0;
  for (const double w : weights) {
    AP3_REQUIRE_MSG(w >= 0.0, "negative partition weight " << w);
    total += w;
  }
  std::vector<std::int64_t> cuts(static_cast<std::size_t>(parts) + 1, n);
  cuts[0] = 0;
  const double target = total / parts;
  int part = 0;
  double load = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (part < parts - 1 && load + weights[static_cast<std::size_t>(i)] * 0.5 >=
                                target * (part + 1)) {
      ++part;
      cuts[static_cast<std::size_t>(part)] = i;
    }
    load += weights[static_cast<std::size_t>(i)];
  }
  if (nonempty) {
    // Degenerate pieces arise when a run of zero weights spans a target
    // boundary; push such cuts apart while preserving order.
    for (int p = 1; p < parts; ++p)
      if (cuts[static_cast<std::size_t>(p)] <= cuts[static_cast<std::size_t>(p - 1)])
        cuts[static_cast<std::size_t>(p)] = cuts[static_cast<std::size_t>(p - 1)] + 1;
    for (int p = parts - 1; p >= 1; --p)
      if (cuts[static_cast<std::size_t>(p)] >= cuts[static_cast<std::size_t>(p + 1)])
        cuts[static_cast<std::size_t>(p)] = cuts[static_cast<std::size_t>(p + 1)] - 1;
  }
  return cuts;
}

namespace {
void validate_cuts(const std::vector<std::int64_t>& cuts, std::int64_t n,
                   const char* axis) {
  AP3_REQUIRE_MSG(cuts.size() >= 2 && cuts.front() == 0 && cuts.back() == n,
                  "cut lines along " << axis << " must span [0, " << n << ")");
  for (std::size_t k = 1; k < cuts.size(); ++k)
    AP3_REQUIRE_MSG(cuts[k] > cuts[k - 1],
                    "cut lines along " << axis << " must be strictly ascending"
                                       << " (empty blocks are not halo-able)");
}
}  // namespace

BlockPartition2D::BlockPartition2D(int nx, int ny, int px, int py)
    : nx_(nx), ny_(ny), px_(px), py_(py) {
  AP3_REQUIRE_MSG(px >= 1 && py >= 1 && px <= nx && py <= ny,
                  "block partition " << px << "x" << py
                                     << " invalid for grid " << nx << "x" << ny);
}

BlockPartition2D::BlockPartition2D(int nx, int ny, BlockCuts cuts)
    : nx_(nx), ny_(ny), px_(cuts.px()), py_(cuts.py()),
      x_cuts_(std::move(cuts.x)), y_cuts_(std::move(cuts.y)) {
  validate_cuts(x_cuts_, nx_, "x");
  validate_cuts(y_cuts_, ny_, "y");
}

BlockPartition2D BlockPartition2D::balanced(int nx, int ny, int nranks) {
  AP3_REQUIRE(nranks >= 1);
  // Pick the factorization closest to the grid's aspect ratio.
  int best_px = 1;
  double best_score = 1e300;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    if (px > nx || py > ny) continue;
    const double block_aspect =
        (static_cast<double>(nx) / px) / (static_cast<double>(ny) / py);
    const double score = std::abs(std::log(block_aspect));
    if (score < best_score) {
      best_score = score;
      best_px = px;
    }
  }
  AP3_REQUIRE_MSG(best_px * (nranks / best_px) == nranks,
                  "no valid block factorization");
  return BlockPartition2D(nx, ny, best_px, nranks / best_px);
}

Range1D BlockPartition2D::x_range(int rank) const {
  AP3_REQUIRE_MSG(rank >= 0 && rank < nranks(),
                  "rank " << rank << " out of range for " << nranks()
                          << "-rank block partition");
  const int bx = block_x(rank);
  if (x_cuts_.empty()) return partition_1d(nx_, px_, bx);
  return {x_cuts_[static_cast<std::size_t>(bx)],
          x_cuts_[static_cast<std::size_t>(bx) + 1]};
}

Range1D BlockPartition2D::y_range(int rank) const {
  AP3_REQUIRE_MSG(rank >= 0 && rank < nranks(),
                  "rank " << rank << " out of range for " << nranks()
                          << "-rank block partition");
  const int by = block_y(rank);
  if (y_cuts_.empty()) return partition_1d(ny_, py_, by);
  return {y_cuts_[static_cast<std::size_t>(by)],
          y_cuts_[static_cast<std::size_t>(by) + 1]};
}

namespace {
int cut_owner(const std::vector<std::int64_t>& cuts, std::int64_t index) {
  // upper_bound over ascending boundaries: cuts[b] <= index < cuts[b+1].
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), index);
  return static_cast<int>(it - cuts.begin()) - 1;
}
}  // namespace

int BlockPartition2D::owner(int i, int j) const {
  AP3_REQUIRE_MSG(i >= 0 && i < nx_ && j >= 0 && j < ny_,
                  "column (" << i << "," << j << ") outside grid " << nx_
                             << "x" << ny_);
  const int bx = x_cuts_.empty() ? owner_1d(nx_, px_, i) : cut_owner(x_cuts_, i);
  const int by = y_cuts_.empty() ? owner_1d(ny_, py_, j) : cut_owner(y_cuts_, j);
  return rank_of_block(bx, by);
}

BlockCuts BlockPartition2D::cuts() const {
  if (!x_cuts_.empty()) return {x_cuts_, y_cuts_};
  BlockCuts c;
  c.x.reserve(static_cast<std::size_t>(px_) + 1);
  c.y.reserve(static_cast<std::size_t>(py_) + 1);
  c.x.push_back(0);
  for (int b = 0; b < px_; ++b) c.x.push_back(partition_1d(nx_, px_, b).end);
  c.y.push_back(0);
  for (int b = 0; b < py_; ++b) c.y.push_back(partition_1d(ny_, py_, b).end);
  return c;
}

SupernodeBlockMap::SupernodeBlockMap(int px, int py, int supernode_size)
    : px_(px), py_(py) {
  AP3_REQUIRE_MSG(px >= 1 && py >= 1 && supernode_size >= 1,
                  "supernode block map needs px, py, supernode_size >= 1 (got "
                      << px << "x" << py << ", " << supernode_size << ")");
  // Near-square tile: start from floor(sqrt(size)), clamp to the block grid,
  // then let each axis reclaim the other's clamped slack so a skinny grid
  // still fills its supernodes (px=2, size=8 -> 2x4 tiles; py=1 -> Nx1).
  tile_w_ = std::max(1, static_cast<int>(std::sqrt(
                            static_cast<double>(supernode_size))));
  tile_w_ = std::min(tile_w_, px_);
  tile_h_ = std::min(std::max(1, supernode_size / tile_w_), py_);
  tile_w_ = std::min(std::max(1, supernode_size / tile_h_), px_);
  tiles_x_ = (px_ + tile_w_ - 1) / tile_w_;
  tiles_y_ = (py_ + tile_h_ - 1) / tile_h_;
}

int SupernodeBlockMap::supernode_of_block(int bx, int by) const {
  AP3_REQUIRE_MSG(bx >= 0 && bx < px_ && by >= 0 && by < py_,
                  "block (" << bx << "," << by << ") outside " << px_ << "x"
                            << py_ << " block grid");
  return (by / tile_h_) * tiles_x_ + bx / tile_w_;
}

int SupernodeBlockMap::supernode_of_rank(int rank) const {
  AP3_REQUIRE_MSG(rank >= 0 && rank < px_ * py_,
                  "rank " << rank << " outside " << px_ * py_ << "-rank map");
  return supernode_of_block(rank % px_, rank / px_);
}

std::vector<int> SupernodeBlockMap::topology_map() const {
  std::vector<int> map(static_cast<std::size_t>(px_) * py_);
  for (int rank = 0; rank < px_ * py_; ++rank)
    map[static_cast<std::size_t>(rank)] = supernode_of_rank(rank);
  return map;
}

double SupernodeBlockMap::intra_neighbor_fraction() const {
  std::int64_t total = 0, intra = 0;
  for (int by = 0; by < py_; ++by) {
    for (int bx = 0; bx < px_; ++bx) {
      const int here = supernode_of_block(bx, by);
      if (bx + 1 < px_) {
        ++total;
        if (supernode_of_block(bx + 1, by) == here) ++intra;
      }
      if (by + 1 < py_) {
        ++total;
        if (supernode_of_block(bx, by + 1) == here) ++intra;
      }
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(intra) / static_cast<double>(total);
}

ActiveCompaction::ActiveCompaction(const TripolarGrid& grid, int nranks)
    : nranks_(nranks), per_rank_(static_cast<size_t>(nranks)) {
  AP3_REQUIRE(nranks >= 1);
  std::vector<CompactColumn> active;
  for (int j = 0; j < grid.ny(); ++j) {
    for (int i = 0; i < grid.nx(); ++i) {
      const int kmt = grid.kmt(i, j);
      if (kmt > 0) active.push_back({i, j, kmt});
    }
  }
  total_columns_ = static_cast<std::int64_t>(active.size());
  for (const CompactColumn& col : active) total_points_ += col.kmt;
  removed_fraction_ = 1.0 - static_cast<double>(total_points_) /
                                static_cast<double>(grid.total_points());

  // Greedy prefix split balancing 3-D points: walk the compact column list
  // and cut whenever the running load reaches the per-rank target. Columns
  // stay contiguous in row-major order, preserving halo locality.
  std::vector<double> weights(active.size());
  for (std::size_t c = 0; c < active.size(); ++c)
    weights[c] = static_cast<double>(active[c].kmt);
  split(active, weights);
}

ActiveCompaction::ActiveCompaction(const TripolarGrid& grid, int nranks,
                                   std::span<const double> column_cost)
    : nranks_(nranks), per_rank_(static_cast<size_t>(nranks)) {
  AP3_REQUIRE(nranks >= 1);
  std::vector<CompactColumn> active;
  for (int j = 0; j < grid.ny(); ++j) {
    for (int i = 0; i < grid.nx(); ++i) {
      const int kmt = grid.kmt(i, j);
      if (kmt > 0) active.push_back({i, j, kmt});
    }
  }
  AP3_REQUIRE_MSG(column_cost.size() == active.size(),
                  "measured-cost vector has " << column_cost.size()
                      << " entries for " << active.size() << " active columns");
  total_columns_ = static_cast<std::int64_t>(active.size());
  for (const CompactColumn& col : active) total_points_ += col.kmt;
  removed_fraction_ = 1.0 - static_cast<double>(total_points_) /
                                static_cast<double>(grid.total_points());
  split(active, column_cost);
}

void ActiveCompaction::split(const std::vector<CompactColumn>& active,
                             std::span<const double> weights) {
  const std::vector<std::int64_t> cuts = weighted_cuts(weights, nranks_);
  for (int rank = 0; rank < nranks_; ++rank) {
    const auto begin = static_cast<std::size_t>(cuts[static_cast<std::size_t>(rank)]);
    const auto end = static_cast<std::size_t>(cuts[static_cast<std::size_t>(rank) + 1]);
    per_rank_[static_cast<std::size_t>(rank)].assign(active.begin() + begin,
                                                     active.begin() + end);
  }
}

const std::vector<CompactColumn>& ActiveCompaction::columns(int rank) const {
  AP3_REQUIRE_MSG(rank >= 0 && rank < nranks_,
                  "rank " << rank << " out of range for " << nranks_
                          << "-rank compaction");
  return per_rank_[static_cast<size_t>(rank)];
}

double ActiveCompaction::load_imbalance() const {
  double max_load = 0.0, total = 0.0;
  int nonempty = 0;
  for (const auto& cols : per_rank_) {
    double load = 0.0;
    for (const CompactColumn& col : cols) load += col.kmt;
    max_load = std::max(max_load, load);
    total += load;
    if (!cols.empty()) ++nonempty;
  }
  if (nonempty == 0) return 0.0;
  const double mean = total / nranks_;
  return mean == 0.0 ? 0.0 : max_load / mean;
}

}  // namespace ap3::grid
