# Empty compiler generated dependencies file for ap3_ocn.
# This may be replaced when dependencies are built.
