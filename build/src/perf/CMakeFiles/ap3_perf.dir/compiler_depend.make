# Empty compiler generated dependencies file for ap3_perf.
# This may be replaced when dependencies are built.
