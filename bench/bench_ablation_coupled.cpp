// Ablation benches for the coupled-model design choices called out in
// DESIGN.md and §7.2 of the paper:
//  (a) task-domain split: how the atm/ocn node allocation moves the coupled
//      SYPD (the paper allocates the coupler+atm+ice+land domain most of the
//      machine because the atmosphere dominates);
//  (b) §8 outlook, implemented: federation of two clusters over a
//      computing-power-network WAN — throughput vs link bandwidth and the
//      break-even bandwidth against one combined machine.
#include <cstdio>

#include "perf/federation.hpp"
#include "perf/scaling.hpp"

int main() {
  using namespace ap3::perf;
  ScalingModel model;
  // Pull the Table 2 calibration so everything here is on the published
  // absolute scale.
  const auto curves = model.table2_strong_scaling();
  auto coeffs = [&](const char* label) {
    for (const auto& c : curves)
      if (c.label == label) return std::make_pair(c.calib_compute, c.calib_comm);
    return std::make_pair(1.0, 1.0);
  };
  const auto [atm_a, atm_b] = coeffs("1km ATM CPE+OPT");
  const auto [ocn_a, ocn_b] = coeffs("2km OCN CPE+OPT");

  std::printf("Ablation (a) — task-domain split at the 1v1 scale (95316 "
              "nodes)\n");
  std::printf("================================================================\n");
  const AtmWorkload atm1 = AtmWorkload::paper(1.0);
  const OcnWorkload ocn1 = OcnWorkload::paper(1.0);
  std::printf("  atm share of nodes   coupled SYPD (calibrated)\n");
  double best_sypd = 0.0, best_fraction = 0.0;
  for (double fraction : {0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}) {
    const auto atm_nodes = static_cast<long long>(95316 * fraction);
    const long long ocn_nodes = 95316 - atm_nodes;
    const DayCost ac = model.atm_day_sunway(atm1, atm_nodes, CodePath::kCpeOpt);
    const DayCost oc = model.ocn_day_sunway(ocn1, ocn_nodes, CodePath::kCpeOpt);
    const double t_atm = atm_a * ac.compute + atm_b * ac.comm;
    const double t_ocn = ocn_a * oc.compute + ocn_b * oc.comm;
    const double sypd =
        sypd_from_seconds_per_day(t_atm > t_ocn ? t_atm : t_ocn);
    std::printf("  %16.0f%%   %10.3f\n", 100.0 * fraction, sypd);
    if (sypd > best_sypd) {
      best_sypd = sypd;
      best_fraction = fraction;
    }
  }
  std::printf("  best split: %.0f%% atmosphere — throughput peaks where the\n"
              "  two task domains' wall times balance, the load-balancing\n"
              "  principle behind §7.2's resource allocation.\n\n",
              100.0 * best_fraction);

  std::printf("Ablation (b) — §8 federation over a computing power network\n");
  std::printf("=============================================================\n");
  FederationModel federation(model);
  federation.set_component_calibration(atm_a, atm_b, ocn_a, ocn_b);
  FederationConfig config;
  config.atm = AtmWorkload::paper(3.0);
  config.ocn = OcnWorkload::paper(2.0);
  config.atm_cluster_nodes = 30000;
  config.ocn_cluster_nodes = 12000;
  config.wan.latency_seconds = 1e-3;

  const double single = federation.single_machine_sypd(config);
  std::printf("  single combined machine (42000 nodes): %.3f SYPD\n\n", single);
  std::printf("  WAN bandwidth [GB/s]   federated SYPD   vs single   "
              "WAN-bound\n");
  for (double gbs : {0.1, 1.0, 5.0, 20.0, 100.0}) {
    config.wan.bandwidth_gbs = gbs;
    const FederationPrediction p = federation.predict(config);
    std::printf("  %18.1f   %14.3f   %8.0f%%   %s\n", gbs, p.sypd,
                100.0 * p.sypd / single, p.wan_bound ? "yes" : "no");
  }
  const double breakeven = federation.breakeven_bandwidth_gbs(config, 0.95);
  if (breakeven > 0.0)
    std::printf("\n  break-even (95%% of single machine): %.2f GB/s of WAN "
                "bandwidth\n",
                breakeven);
  else
    std::printf("\n  federation cannot reach 95%% of the single machine at "
                "this latency\n");
  std::printf("  — task-level component federation pays off once the link\n"
              "  sustains the coupling-boundary traffic, the §8 claim.\n");
  return 0;
}
