#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>

#include "base/timer.hpp"

namespace ap3::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double now_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

// --- RankBuffer --------------------------------------------------------------

int RankBuffer::rank() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rank_;
}

void RankBuffer::set_rank(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  rank_ = rank;
}

std::uint32_t RankBuffer::intern_locked(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t RankBuffer::span_enter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++depth_;
  return intern_locked(name);
}

void RankBuffer::span_exit(std::uint32_t name_id, double start_seconds,
                           double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (depth_ > 0) --depth_;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name_id, depth_, start_seconds, end_seconds});
}

void RankBuffer::record_span(std::string_view name, std::uint32_t depth,
                             double start_seconds, double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t name_id = intern_locked(name);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name_id, depth, start_seconds, end_seconds});
}

std::uint32_t RankBuffer::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

void RankBuffer::counter_add(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), CounterValue{}).first;
  it->second.value += delta;
  ++it->second.updates;
}

void RankBuffer::gauge_max(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), CounterValue{}).first;
  it->second.is_gauge = true;
  it->second.value = std::max(it->second.value, value);
  ++it->second.updates;
}

std::size_t RankBuffer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t RankBuffer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<SpanEvent> RankBuffer::events(std::size_t first_event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_event >= events_.size()) return {};
  return {events_.begin() + static_cast<std::ptrdiff_t>(first_event),
          events_.end()};
}

std::vector<std::string> RankBuffer::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_;
}

std::map<std::string, CounterValue> RankBuffer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

double RankBuffer::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value;
}

std::vector<SpanStats> RankBuffer::aggregate_spans(
    std::size_t first_event) const {
  std::map<std::uint32_t, SpanStats> by_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t e = first_event; e < events_.size(); ++e) {
      const SpanEvent& event = events_[e];
      SpanStats& agg = by_id[event.name_id];
      if (agg.calls == 0) agg.name = names_[event.name_id];
      const double secs = event.end_seconds - event.start_seconds;
      agg.calls += 1;
      agg.total_seconds += secs;
      agg.max_seconds = std::max(agg.max_seconds, secs);
      agg.min_seconds =
          agg.calls == 1 ? secs : std::min(agg.min_seconds, secs);
    }
  }
  std::vector<SpanStats> out;
  out.reserve(by_id.size());
  for (auto& [id, agg] : by_id) out.push_back(std::move(agg));
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_seconds > b.total_seconds;
  });
  return out;
}

void RankBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  depth_ = 0;
  names_.clear();
  ids_.clear();
  events_.clear();
  dropped_ = 0;
  counters_.clear();
}

// --- process-wide registry ----------------------------------------------------

namespace {

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<RankBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // never destroyed:
  return *r;  // thread_local buffers may outlive static destruction order
}

}  // namespace

namespace {
// Active BufferScope adoption for this thread (nullptr: use the thread's own
// buffer). Plain thread_local pointer — the adopted buffer is kept alive by
// the process registry, and the adopting scope is strictly nested.
thread_local RankBuffer* t_adopted_buffer = nullptr;
}  // namespace

RankBuffer& local() {
  if (t_adopted_buffer != nullptr) return *t_adopted_buffer;
  thread_local std::shared_ptr<RankBuffer> buffer = [] {
    auto b = std::make_shared<RankBuffer>();
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

BufferScope::BufferScope(RankBuffer& buffer) : previous_(t_adopted_buffer) {
  t_adopted_buffer = &buffer;
}

BufferScope::~BufferScope() { t_adopted_buffer = previous_; }

std::vector<std::shared_ptr<RankBuffer>> buffers() {
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.buffers;
}

void reset_all() {
  for (const auto& buffer : buffers()) buffer->clear();
}

void set_rank(int rank) { local().set_rank(rank); }

void counter_add(std::string_view name, double delta) {
  if (!enabled()) return;
  local().counter_add(name, delta);
}

void counter_add_keyed(std::string_view family, long long key, double delta) {
  if (!enabled()) return;
  std::string name;
  name.reserve(family.size() + 24);
  name.append(family);
  name.push_back('[');
  name.append(std::to_string(key));
  name.push_back(']');
  local().counter_add(name, delta);
}

void gauge_max(std::string_view name, double value) {
  if (!enabled()) return;
  local().gauge_max(name, value);
}

double total_counter(std::string_view name) {
  double sum = 0.0;
  double max = 0.0;
  bool gauge = false;
  for (const auto& buffer : buffers()) {
    const auto counters = buffer->counters();
    auto it = counters.find(std::string(name));
    if (it == counters.end()) continue;
    sum += it->second.value;
    max = std::max(max, it->second.value);
    gauge = gauge || it->second.is_gauge;
  }
  return gauge ? max : sum;
}

void fill_registry(const RankBuffer& buffer, std::size_t first_event,
                   ap3::TimerRegistry& registry, std::string_view prefix) {
  for (const SpanStats& agg : buffer.aggregate_spans(first_event)) {
    if (!prefix.empty() &&
        std::string_view(agg.name).substr(0, prefix.size()) != prefix)
      continue;
    TimerStats stats;
    stats.name = agg.name;
    stats.calls = agg.calls;
    stats.total_seconds = agg.total_seconds;
    stats.max_seconds = agg.max_seconds;
    stats.min_seconds = agg.min_seconds;
    registry.absorb(stats);
  }
}

}  // namespace ap3::obs
