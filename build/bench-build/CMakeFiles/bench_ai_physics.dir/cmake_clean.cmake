file(REMOVE_RECURSE
  "../bench/bench_ai_physics"
  "../bench/bench_ai_physics.pdb"
  "CMakeFiles/bench_ai_physics.dir/bench_ai_physics.cpp.o"
  "CMakeFiles/bench_ai_physics.dir/bench_ai_physics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ai_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
