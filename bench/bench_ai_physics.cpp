// §5.2.1 benchmark: conventional vs AI physics suite.
//
// Two views:
//  (1) measured wall time per column of this repository's mini suites
//      (google-benchmark; on a scalar host CPU the conventional suite is
//      cheap because it is miniature — the paper's full suite is not), and
//  (2) modeled per-column times on the Sunway CPE cluster using the paper's
//      full-suite flop counts, where the AI suite's matmul-shaped work wins
//      — the actual claim of §5.2.1.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "atm/physics.hpp"
#include "sunway/coregroup.hpp"

namespace {

using namespace ap3;
using namespace ap3::atm;

constexpr std::size_t kLevels = 16;
constexpr std::size_t kColumns = 64;

ColumnBatch make_batch() {
  ColumnBatch batch(kColumns, kLevels);
  for (std::size_t c = 0; c < kColumns; ++c) {
    batch.tskin[c] = 285.0 + (c % 7);
    batch.coszr[c] = 0.1 * (c % 10);
    for (std::size_t k = 0; k < kLevels; ++k) {
      const double depth = (k + 1.0) / kLevels;
      batch.temp[batch.at(c, k)] = 216.0 + 72.0 * depth;
      batch.q[batch.at(c, k)] = 0.015 * depth;
      batch.u[batch.at(c, k)] = 9.0;
      batch.pressure[batch.at(c, k)] = 1e5 * depth;
    }
  }
  return batch;
}

std::shared_ptr<ai::AiPhysicsSuite> trained_suite() {
  static std::shared_ptr<ai::AiPhysicsSuite> suite = [] {
    ConventionalPhysics conventional;
    const TrainingData data =
        generate_training_data(conventional, 16, 4, kLevels, 99);
    ai::SuiteConfig config;
    config.levels = kLevels;
    config.cnn_hidden = 16;
    config.mlp_hidden = 32;
    return train_ai_physics(data, config, 4, 3e-3f).suite;
  }();
  return suite;
}

void BM_ConventionalPhysics(benchmark::State& state) {
  ConventionalPhysics physics;
  ColumnBatch batch = make_batch();
  for (auto _ : state) {
    physics.compute(batch);
    benchmark::DoNotOptimize(batch.dtemp.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kColumns);
}
BENCHMARK(BM_ConventionalPhysics);

void BM_AiPhysics(benchmark::State& state) {
  AiPhysics physics(trained_suite());
  ColumnBatch batch = make_batch();
  for (auto _ : state) {
    physics.compute(batch);
    benchmark::DoNotOptimize(batch.dtemp.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kColumns);
}
BENCHMARK(BM_AiPhysics);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Modeled full-scale comparison on a Sunway core group.
  using sunway::CoreGroup;
  using sunway::ExecTarget;
  const ai::SuiteConfig paper = ai::SuiteConfig::paper_scale();
  const double ai_flops = ai::TendencyCnn(paper).flops_per_column() +
                          ai::RadiationMlp(paper).flops_per_column();
  // Full conventional suite (radiative transfer dominated): ~9e6 scalar
  // flops/column at ~20 % of scalar peak (branchy) -> 5x inflation.
  const double conv_flops = 9.0e6 * 5.0;

  sunway::KernelWork conv{conv_flops, 30 * 12.0 * 8.0, 0.0};
  sunway::KernelWork aiw{0.0, 30 * 5.0 * 8.0, ai_flops};
  const double conv_t = CoreGroup::predict(conv, ExecTarget::kCpeCluster);
  const double ai_t = CoreGroup::predict(aiw, ExecTarget::kCpeCluster);

  std::printf("\nmodeled per-column physics time on one Sunway core group:\n");
  std::printf("  conventional suite: %8.1f us  (%.1e scalar flops, branchy)\n",
              conv_t * 1e6, conv_flops);
  std::printf("  AI suite:           %8.1f us  (%.1e tensor flops, "
              "matmul-shaped)\n",
              ai_t * 1e6, ai_flops);
  std::printf("  modeled speedup:    %8.1fx  (the §5.2.1 'computational "
              "gains')\n",
              conv_t / ai_t);
  return 0;
}
