#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace ap3::tensor {

namespace {
std::size_t product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  AP3_REQUIRE_MSG(data_.size() == product(shape_),
                  "tensor data size does not match shape");
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  AP3_REQUIRE(product(shape) == data_.size());
  return Tensor(std::move(shape), data_);
}

Tensor matmul_nt(const Tensor& a, const Tensor& weight) {
  AP3_REQUIRE(a.rank() == 2 && weight.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1);
  const std::size_t n = weight.dim(0);
  AP3_REQUIRE_MSG(weight.dim(1) == k, "matmul_nt inner dimension mismatch");
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* wrow = weight.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * wrow[p];
      out.at2(i, j) = acc;
    }
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  AP3_REQUIRE(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  AP3_REQUIRE_MSG(b.dim(0) == k, "matmul inner dimension mismatch");
  Tensor out({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aval = a.at2(i, p);
      if (aval == 0.0f) continue;
      const float* brow = b.data() + p * n;
      float* orow = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
  return out;
}

Tensor conv1d(const Tensor& x, const Tensor& kernel, const Tensor& bias) {
  AP3_REQUIRE(x.rank() == 3 && kernel.rank() == 3 && bias.rank() == 1);
  const std::size_t batch = x.dim(0), cin = x.dim(1), len = x.dim(2);
  const std::size_t cout = kernel.dim(0), kk = kernel.dim(2);
  AP3_REQUIRE_MSG(kernel.dim(1) == cin, "conv1d channel mismatch");
  AP3_REQUIRE_MSG(kk % 2 == 1, "conv1d kernel size must be odd (same padding)");
  AP3_REQUIRE(bias.dim(0) == cout);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kk / 2);
  Tensor out({batch, cout, len});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      for (std::size_t l = 0; l < len; ++l) {
        float acc = bias[co];
        for (std::size_t ci = 0; ci < cin; ++ci) {
          for (std::size_t t = 0; t < kk; ++t) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(l) + static_cast<std::ptrdiff_t>(t) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(len)) continue;
            acc += kernel.at3(co, ci, t) *
                   x.at3(b, ci, static_cast<std::size_t>(src));
          }
        }
        out.at3(b, co, l) = acc;
      }
    }
  }
  return out;
}

Tensor conv1d_backward(const Tensor& x, const Tensor& kernel,
                       const Tensor& grad_out, Tensor& grad_kernel,
                       Tensor& grad_bias) {
  const std::size_t batch = x.dim(0), cin = x.dim(1), len = x.dim(2);
  const std::size_t cout = kernel.dim(0), kk = kernel.dim(2);
  AP3_REQUIRE(grad_out.dim(0) == batch && grad_out.dim(1) == cout &&
              grad_out.dim(2) == len);
  AP3_REQUIRE(grad_kernel.same_shape(kernel));
  AP3_REQUIRE(grad_bias.dim(0) == cout);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kk / 2);
  Tensor grad_in({batch, cin, len});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      for (std::size_t l = 0; l < len; ++l) {
        const float g = grad_out.at3(b, co, l);
        grad_bias[co] += g;
        for (std::size_t ci = 0; ci < cin; ++ci) {
          for (std::size_t t = 0; t < kk; ++t) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(l) + static_cast<std::ptrdiff_t>(t) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(len)) continue;
            grad_kernel.at3(co, ci, t) +=
                g * x.at3(b, ci, static_cast<std::size_t>(src));
            grad_in.at3(b, ci, static_cast<std::size_t>(src)) +=
                g * kernel.at3(co, ci, t);
          }
        }
      }
    }
  }
  return grad_in;
}

void add_inplace(Tensor& a, const Tensor& b) {
  AP3_REQUIRE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= s;
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  AP3_REQUIRE(x.same_shape(grad_out));
  Tensor out = grad_out;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (x[i] <= 0.0f) out[i] = 0.0f;
  return out;
}

float mse(const Tensor& pred, const Tensor& target) {
  AP3_REQUIRE(pred.same_shape(target));
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(pred.size()));
}

Tensor mse_grad(const Tensor& pred, const Tensor& target) {
  AP3_REQUIRE(pred.same_shape(target));
  Tensor grad(pred.shape());
  const float scale = 2.0f / static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i)
    grad[i] = scale * (pred[i] - target[i]);
  return grad;
}

}  // namespace ap3::tensor
