// Shared immutable inputs for ensemble serving (src/fleet).
//
// A production ensemble runs N perturbed members of the same configuration in
// one process. Everything a member reads but never writes — the icosahedral
// atmosphere mesh, the tripolar ocean grid, the two regrid sparse matrices,
// and (optionally) frozen trained AI weights — is identical across members,
// so rebuilding it per instance costs O(members) memory and init time for no
// reason. SharedInputs is that read-only context, built once and handed out
// as shared_ptr<const>:
//
//   - SharedInputs is communicator-free and deeply immutable after build(),
//     so one instance may be shared across rank threads and across members.
//   - CouplingPlans is the communicator-bound half (GlobalSegMaps, RegridOps,
//     Rearranger routes). It is per-rank but member-invariant, so a fleet
//     builds it once (member 0) and donates it to members 1..N-1 on the same
//     rank thread. Every rebuild path (rebalance, restore_layout) allocates a
//     fresh plans object, so a member that diverges from the fleet's common
//     decomposition detaches automatically instead of corrupting its peers.
//   - FrozenSuite is trained-weight *data* (weights + normalizers), not a
//     live suite: a live AiPhysicsSuite owns a stats-mutating InferenceEngine
//     and must stay rank-local. Each rank thaws the frozen record once with
//     materialize_suite() and shares the resulting suite across its members.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ai/suite.hpp"
#include "atm/physics.hpp"
#include "grid/icosahedral.hpp"
#include "grid/tripolar.hpp"
#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "mct/sparsematrix.hpp"

namespace ap3::cpl {

/// The configuration slice SharedInputs depends on. CoupledModel checks its
/// own config against this at construction, so a context built for one
/// resolution cannot silently serve another.
struct SharedInputsSpec {
  int mesh_n = 8;
  grid::TripolarConfig ocn_grid;
  int regrid_neighbors = 3;

  friend bool operator==(const SharedInputsSpec&,
                         const SharedInputsSpec&) = default;
};

/// Immutable record of a trained AI physics suite: both networks' weights and
/// all four normalizers. Pure data — safe to share across rank threads.
struct FrozenSuite {
  ai::SuiteConfig config;
  ai::ChannelNormalizer input, tendency, rad_input, flux;
  std::vector<float> cnn_weights, mlp_weights;
  bool fitted = false;
};

/// Compute the atm->ocn and ocn->atm inverse-distance regrid matrices for a
/// mesh/grid pair (row/column ids in global id space, land excluded). The
/// dominant construction cost of a coupled member; shared by
/// SharedInputs::build and the driver's private-context path.
void build_regrid_matrices(const grid::IcosahedralGrid& mesh,
                           const grid::TripolarGrid& ogrid, int neighbors,
                           mct::SparseMatrix& a2o, mct::SparseMatrix& o2a);

class SharedInputs {
 public:
  /// Build the full shared context (mesh, ocean grid, regrid matrices).
  /// Communicator-free: call once per process, before or outside par::run.
  static std::shared_ptr<const SharedInputs> build(const SharedInputsSpec& spec);
  /// Same, additionally freezing `suite`'s trained weights into the context
  /// (the suite itself is only read).
  static std::shared_ptr<const SharedInputs> build(const SharedInputsSpec& spec,
                                                   ai::AiPhysicsSuite& suite);

  const SharedInputsSpec& spec() const { return spec_; }
  const std::shared_ptr<const grid::IcosahedralGrid>& mesh() const {
    return mesh_;
  }
  const std::shared_ptr<const grid::TripolarGrid>& ocean_grid() const {
    return ocean_grid_;
  }
  const mct::SparseMatrix& a2o_matrix() const { return a2o_; }
  const mct::SparseMatrix& o2a_matrix() const { return o2a_; }

  bool has_frozen_suite() const { return frozen_ != nullptr; }
  const FrozenSuite& frozen_suite() const;
  /// Thaw the frozen record into a live suite (fresh engine, bit-identical
  /// weights/normalizers). Call once per rank thread; the result may be
  /// shared across that rank's members but never across rank threads.
  std::shared_ptr<ai::AiPhysicsSuite> materialize_suite() const;

  /// Bytes of read-only state a private (non-shared) member would replicate:
  /// mesh geometry + ocean grid + both regrid matrices + frozen weights.
  std::size_t resident_bytes() const;

 private:
  SharedInputs() = default;
  static std::shared_ptr<SharedInputs> build_impl(const SharedInputsSpec& spec);
  SharedInputsSpec spec_;
  std::shared_ptr<const grid::IcosahedralGrid> mesh_;
  std::shared_ptr<const grid::TripolarGrid> ocean_grid_;
  mct::SparseMatrix a2o_, o2a_;
  std::shared_ptr<const FrozenSuite> frozen_;
};

/// Communicator-bound coupling machinery for one decomposition: the three
/// GlobalSegMaps plus the regrid/rearrange operators built on them. Shareable
/// across members of one rank thread (all operations on it are const); owned
/// via shared_ptr<const> so rebuilding detaches rather than mutates.
struct CouplingPlans {
  mct::GlobalSegMap atm_map, ocn_map, ice_map;
  std::unique_ptr<const mct::RegridOp> a2o, a2i, o2a, i2a;
  std::unique_ptr<const mct::Rearranger> o2i, i2o;
};

/// Options for installing an AI physics suite on a coupled model — the former
/// three loose install_ai_physics parameters as one struct, so fleet members
/// can share a suite while carrying per-member engine/training options.
struct AiInstallOptions {
  /// The trained suite. In a fleet this pointer is shared across members (one
  /// InferenceEngine serves them all); leave null in
  /// EnsembleFleet::install_ai_physics to thaw the SharedInputs frozen suite.
  std::shared_ptr<ai::AiPhysicsSuite> suite;
  /// Execution space / precision policy / micro-batching for the engine.
  ai::EngineConfig engine;
  /// Keep fine-tuning against the conventional suite during the run.
  /// Mutates the suite's weights — forbidden on a fleet-shared suite.
  std::optional<atm::OnlineTrainingConfig> online;
};

}  // namespace ap3::cpl
