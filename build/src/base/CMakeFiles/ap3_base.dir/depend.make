# Empty dependencies file for ap3_base.
# This may be replaced when dependencies are built.
