// IceModel — the CICE4-mini sea-ice component.
//
// Zero-layer Semtner thermodynamics (growth where the ocean is at/below
// freezing under a cold atmosphere, melt where either warms) plus free-drift
// advection by the imported surface currents. Lives on the ocean's tripolar
// grid with its own block decomposition (in AP3ESM's concurrent layout the
// ice runs in the atmosphere task domain, §7.2), and shares the §5.2.2 land
// exclusion: only ocean columns carry state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "balance/rebalanceable.hpp"
#include "grid/halo.hpp"
#include "grid/partition.hpp"
#include "grid/tripolar.hpp"
#include "io/checkpoint.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "par/comm.hpp"

namespace ap3::ice {

struct IceConfig {
  grid::TripolarConfig grid{120, 80, 20};
  double dt_seconds = 1800.0;
  double growth_rate = 2.0e-7;   ///< [m/s per K] of freezing deficit
  double melt_rate = 4.0e-7;     ///< [m/s per K] above freezing
  double max_thickness = 5.0;    ///< [m]
  double full_cover_thickness = 1.0;  ///< hice giving aice = 1

  // Synthetic straggler stall (same contract as OcnConfig's): every ice step
  // sleeps stall_seconds_per_point × (owned active columns whose global
  // position satisfies i >= stall_i_begin or j >= stall_j_begin) and reports
  // the slept time on "ice:busy_seconds". Never touches model state, so runs
  // with and without rebalancing stay bit-identical.
  double stall_seconds_per_point = 0.0;
  int stall_i_begin = -1;  ///< -1: no column-band stall
  int stall_j_begin = -1;  ///< -1: no row-band stall
};

class IceModel : public balance::Rebalanceable {
 public:
  /// `grid`, when non-null, is an externally built immutable grid matching
  /// `config.grid` (ensemble members share one instead of rebuilding).
  IceModel(const par::Comm& comm, const IceConfig& config,
           std::shared_ptr<const grid::TripolarGrid> grid = nullptr);
  /// Explicit-cuts construction for rebalanced decompositions (src/balance).
  IceModel(const par::Comm& comm, const IceConfig& config,
           const grid::BlockCuts& cuts,
           std::shared_ptr<const grid::TripolarGrid> grid = nullptr);

  /// Advance over a coupling window (integer number of dt steps, rounded up).
  void run(double start_seconds, double duration_seconds);

  // --- coupler contract ----------------------------------------------------
  static std::vector<std::string> export_fields();  // ifrac, hice
  static std::vector<std::string> import_fields();  // sst, tbot, us, vs
  const mct::GlobalSegMap& gsmap() const { return gsmap_; }
  void export_state(mct::AttrVect& i2x) const;
  void import_state(const mct::AttrVect& x2i);

  // --- diagnostics ------------------------------------------------------------
  const std::vector<std::int64_t>& ocean_gids() const { return ocean_gids_; }
  double ice_area_fraction() const;     ///< global ice-covered ocean fraction
  double total_ice_volume() const;      ///< Σ hice·A (collective)
  double aice(std::size_t col) const { return aice_[col]; }
  double hice(std::size_t col) const { return hice_[col]; }
  long long steps() const { return steps_; }
  const grid::BlockPartition2D& partition() const { return partition_; }
  grid::BlockCuts cuts() const { return partition_.cuts(); }

  // --- balance::Rebalanceable (src/balance) ----------------------------------
  /// One column's migratable record: prognostic ice state plus imports.
  static std::vector<std::string> migration_fields();

  std::string_view balance_name() const override { return "ice"; }
  const grid::BlockPartition2D* block_partition() const override {
    return &partition_;
  }
  /// Measured per-column weight = 1 + aice: ice-covered columns pay for
  /// thermodynamic growth/melt plus drift, open water only for the scan.
  /// State-dependent but decomposition-invariant, so rebalance on == off
  /// stays bitwise.
  void add_measured_cell_weights(std::span<double> weight) const override;
  double migration_bytes_per_weight_unit() const override;
  std::vector<std::string> migration_field_names() const override {
    return migration_fields();
  }
  std::vector<std::int64_t> migration_gids() const override {
    return ocean_gids_;
  }
  /// Pack owned columns (ocean_gids() order) into `av`, one point per column.
  void export_migration_fields(mct::AttrVect& av) const override;
  /// Inverse of export (same ordering contract).
  void import_migration_fields(const mct::AttrVect& av) override;
  /// Wrapping sum of per-column FNV digests keyed by global id — invariant
  /// under any redistribution of columns across ranks (combine with kSum).
  std::uint64_t column_state_hash() const override;
  /// Carry the (global) step counter across a migration.
  long long steps_completed() const override { return steps_; }
  void set_steps_completed(long long steps) override { steps_ = steps; }

  // --- checkpoint/restart ---------------------------------------------------
  /// This rank's full prognostic snapshot: per-column ice state, the
  /// imported forcing, and the step counter.
  std::vector<io::Section> checkpoint_sections() const;
  /// Inverse of checkpoint_sections(); `sections` must carry this rank's
  /// layout (same names and sizes) with restored values.
  void restore_sections(const std::vector<io::Section>& sections);
  /// Section names in checkpoint_sections() order — the driver's canonical
  /// inventory (needed on ranks where the component does not live).
  static std::vector<std::string> checkpoint_section_names();

 private:
  void thermodynamics(double dt);
  void dynamics(double dt);

  const par::Comm& comm_;
  IceConfig config_;
  std::shared_ptr<const grid::TripolarGrid> grid_;
  grid::BlockPartition2D partition_;
  std::unique_ptr<grid::BlockHalo> halo_;
  mct::GlobalSegMap gsmap_;

  std::vector<std::pair<int, int>> active_columns_;
  std::vector<std::int64_t> ocean_gids_;
  std::vector<double> area_m2_;  ///< per local row

  // State per ocean column (export order).
  std::vector<double> aice_, hice_;
  // Imports.
  std::vector<double> sst_, tbot_, us_, vs_;
  long long steps_ = 0;
  long long stall_points_ = 0;  ///< owned active columns in the stall band
};

}  // namespace ap3::ice
