// In-process message-passing runtime (the repository's MPI substitute).
//
// The paper runs components over MPI across up to 37.2 M Sunway cores; this
// machine has one CPU, so ranks are threads and the transport is a mailbox
// hub. Everything above this layer — halo exchanges, MCT routers, coupler
// rearrangement — is written against the same rank/tag/communicator semantics
// an MPI program would use, so the communication *patterns* of the paper are
// reproduced even though the wire is shared memory.
//
// Semantics implemented:
//  - typed, tagged, eager point-to-point send/recv (FIFO per source),
//  - non-blocking isend/irecv with Request/wait/wait_all,
//  - wildcard source/tag receives,
//  - collectives: barrier, bcast, reduce, allreduce, gather, allgather,
//    alltoall, alltoallv (built over p2p; deterministic), each taking an
//    optional CollectivePolicy selecting the algorithm,
//  - topology-aware hierarchical collectives: a Comm can carry a
//    par::Topology (rank -> supernode map, see topology.hpp); allreduce and
//    alltoallv then stage traffic through supernode leaders so each
//    supernode pair exchanges one combined message instead of all-pairs
//    crossing the oversubscribed uplinks. Reductions use a canonical
//    supernode-blocked fold order fixed by the topology — not by the
//    algorithm — so hierarchical and flat results are bitwise identical,
//  - communicator split (task domains of §5.1.2); split() projects the
//    attached topology onto each subgroup,
//  - per-world traffic accounting (messages/bytes) feeding the perf model,
//  - deterministic fault injection at the mailbox boundary (src/fault):
//    seed-driven drop/duplicate/delay/stall schedules with transparent
//    receiver-side recovery (sequenced reassembly, timeout + exponential
//    backoff, retransmission of dropped messages), surfaced through
//    WorldOptions and the "fault:*" obs counters.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "base/error.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "par/topology.hpp"

namespace ap3::par {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

enum class ReduceOp { kSum, kMin, kMax };

/// Which wire pattern a collective uses. kFlat is the reference (the original
/// root-star / all-pairs exchanges); kHierarchical stages traffic through
/// supernode leaders and requires a Topology attached to the Comm (falls back
/// to flat without one). kDefault defers to the Comm's default algorithm
/// (flat on a bare Comm; set by with_topology()).
enum class CollectiveAlgo { kDefault, kFlat, kHierarchical };

/// Optional per-call policy accepted by every collective. This is the single
/// extension point for algorithm selection — new knobs land here instead of
/// growing parallel entry points.
struct CollectivePolicy {
  CollectiveAlgo algo = CollectiveAlgo::kDefault;
};

/// Aggregate message-traffic counters for one World.
///
/// Kept for the perf model's coarse totals; the observability layer carries
/// the richer breakdown as counter families ("par:coll:<name>:bytes",
/// "par:p2p:bytes:tag[<tag>]", "par:bytes:total") — see src/obs.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

namespace detail {

struct Message {
  int comm_id = 0;  ///< messages are scoped to one communicator
  int src = 0;      ///< sender's rank within that communicator
  int tag = 0;
  /// Position in the (comm_id, src, tag) stream to this destination; only
  /// assigned (starting at 1) when fault injection is active, where it
  /// drives receiver-side reassembly and duplicate suppression.
  std::uint64_t seq = 0;
  std::size_t type_hash = 0;
  std::vector<std::byte> data;
};

class Mailbox;

/// Shared fault-injection state for one World: the immutable config, the
/// replayable injection log, per-stream sequence counters (sender side),
/// the store of dropped messages awaiting retransmission, and recovery
/// statistics. Null on a World without faults — the transport fast path is
/// then a single pointer check.
struct FaultState {
  explicit FaultState(const fault::FaultConfig& config) : config(config) {}

  fault::FaultConfig config;
  fault::InjectionLog log;

  /// Next sequence number for a (comm_id, src_rank, dst_world, tag) stream.
  std::uint64_t next_seq(int comm_id, int src, int dst_world, int tag);
  /// Park a dropped message until a receiver timeout asks for it again.
  void stash_dropped(int dst_world, Message message);
  /// Re-deliver every dropped message parked for `dst_world`; returns count.
  std::size_t retransmit_for(int dst_world, Mailbox& box);

  // Recovery accounting (see fault::FaultStats).
  std::atomic<std::uint64_t> injected_drop{0}, injected_duplicate{0},
      injected_delay{0}, injected_stall{0};
  std::atomic<std::uint64_t> retried{0}, timeouts{0};
  std::atomic<std::uint64_t> recovered_drop{0}, recovered_duplicate{0},
      recovered_delay{0};

 private:
  std::mutex mutex_;
  std::map<std::array<int, 4>, std::uint64_t> stream_seq_;
  std::map<int, std::vector<Message>> dropped_;
};

class Mailbox {
 public:
  void deliver(Message message);
  /// Hold `message` back until `countdown` further deliveries reach this
  /// mailbox (or a receiver timeout flushes it) — the delay/reorder fault.
  void deliver_delayed(Message message, int countdown);
  /// Blocks until a message matching (comm, src, tag) is available. In fault
  /// mode, waits for the *next in-sequence* message of the matching stream
  /// and runs timeout/backoff recovery (flush delayed, retransmit dropped).
  Message take(int comm_id, int src, int tag);
  bool try_take(int comm_id, int src, int tag, Message& out);
  /// Switch this mailbox to sequenced (fault-tolerant) matching.
  void enable_fault_mode(FaultState* state, int world_rank);

 private:
  static bool matches(const Message& m, int comm_id, int src, int tag) {
    return m.comm_id == comm_id && (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }
  /// Fault mode: message is the next expected of its own stream.
  bool in_sequence_locked(const Message& m) const;
  /// Fault mode: admit to the queue with duplicate suppression.
  void admit_locked(Message&& m);
  /// Decrement delay countdowns (unless `force`), admit matured messages.
  void release_delayed_locked(bool force);
  std::deque<Message>::iterator find_locked(int comm_id, int src, int tag);
  Message take_at_locked(std::deque<Message>::iterator it);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;

  // Fault mode only.
  FaultState* fault_ = nullptr;
  int world_rank_ = -1;
  struct Delayed {
    Message message;
    int countdown = 0;
  };
  std::vector<Delayed> delayed_;
  /// (comm_id, src, tag) -> next sequence number the receiver will accept.
  std::map<std::array<int, 3>, std::uint64_t> next_expected_;
};

/// Reusable sense-reversing barrier.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}
  void arrive_and_wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

struct SplitTable {
  std::mutex mutex;
  std::condition_variable cv;
  // comm-id -> epoch -> (rank -> (color,key))
  std::map<std::pair<int, std::uint64_t>, std::map<int, std::pair<int, int>>>
      entries;
};

/// Traffic-attribution scope for one collective call. While alive on this
/// thread, every message posted is charged to the tagged counter family
///   par:coll:bytes[<op>/<algo>/<level>]   (level: intra | inter supernode)
///   par:coll:messages[<op>/<algo>/<level>]
/// and the constructor bumps par:coll:calls[<op>/<algo>] once. Scopes nest
/// and the innermost wins, so e.g. a flat allreduce's bytes land under its
/// constituent reduce/bcast — the wire really is a reduce plus a bcast.
/// Replaces the old per-name "par:coll:<name>:{bytes,calls}" counters and the
/// tag -> collective-name mapping.
class CollScope {
 public:
  CollScope(const char* op, const char* algo);
  ~CollScope();
  CollScope(const CollScope&) = delete;
  CollScope& operator=(const CollScope&) = delete;

  /// Innermost active scope on this thread (nullptr outside collectives).
  static const CollScope* current();

  /// False when obs was disabled at construction (names not built).
  bool armed() const { return armed_; }
  const std::string& bytes_name(bool inter) const {
    return inter ? bytes_inter_ : bytes_intra_;
  }
  const std::string& messages_name(bool inter) const {
    return inter ? messages_inter_ : messages_intra_;
  }

 private:
  bool armed_ = false;
  const CollScope* prev_ = nullptr;
  std::string bytes_intra_, bytes_inter_;
  std::string messages_intra_, messages_inter_;
};

}  // namespace detail

class Comm;

/// Per-World knobs. `fault` with any non-zero rate arms deterministic fault
/// injection on every message crossing the mailbox boundary.
struct WorldOptions {
  fault::FaultConfig fault;
};

/// Shared state for one parallel job: mailboxes, barriers, counters, and the
/// optional fault-injection layer.
class World {
 public:
  explicit World(int nranks);
  World(int nranks, const WorldOptions& options);

  int size() const { return nranks_; }
  TrafficStats traffic() const;

  /// True when this World injects faults into its transport.
  bool fault_active() const { return fault_state_ != nullptr; }
  /// Replayable record of injected faults (null when inactive).
  const fault::InjectionLog* fault_log() const;
  /// Injection/recovery totals so far (all zeros when inactive).
  fault::FaultStats fault_stats() const;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

 private:
  friend class Comm;
  detail::Mailbox& mailbox(int world_rank) {
    return *mailboxes_[static_cast<std::size_t>(world_rank)];
  }
  detail::Barrier& barrier_for(int comm_id, int parties);
  void account(std::size_t bytes);
  detail::SplitTable& split_table() { return split_table_; }
  detail::FaultState* fault_state() { return fault_state_.get(); }

  int nranks_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::unique_ptr<detail::FaultState> fault_state_;
  std::mutex barrier_mutex_;
  std::map<int, std::unique_ptr<detail::Barrier>> barriers_;
  detail::SplitTable split_table_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Handle for a pending non-blocking operation.
class Request {
 public:
  Request() = default;
  void wait();
  bool valid() const { return static_cast<bool>(action_); }

 private:
  friend class Comm;
  explicit Request(std::function<void()> action) : action_(std::move(action)) {}
  std::function<void()> action_;
};

void wait_all(std::span<Request> requests);

/// A communicator: a group of world ranks plus this thread's position in it.
///
/// Copies are cheap views; split() creates sub-communicators (task domains).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  World& world() const { return *world_; }

  // --- point-to-point -----------------------------------------------------
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) const {
    post(dest, tag, typeid(T).hash_code(),
         {reinterpret_cast<const std::byte*>(data.data()),
          data.size() * sizeof(T)});
  }

  template <typename T>
  void send_value(const T& value, int dest, int tag) const {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Receives into `data`; returns the element count actually received
  /// (must be <= data.size()). Throws CommError on type mismatch.
  template <typename T>
  std::size_t recv(std::span<T> data, int src, int tag) const {
    detail::Message m = take(src, tag);
    check_type<T>(m);
    const std::size_t count = m.data.size() / sizeof(T);
    AP3_REQUIRE_MSG(count <= data.size(),
                    "recv buffer too small: need " << count << " elements, have "
                                                   << data.size());
    if (!m.data.empty())  // empty recv leaves data.data() null — no memcpy
      std::memcpy(data.data(), m.data.data(), m.data.size());
    return count;
  }

  template <typename T>
  T recv_value(int src, int tag) const {
    T value{};
    const std::size_t n = recv(std::span<T>(&value, 1), src, tag);
    AP3_REQUIRE(n == 1);
    return value;
  }

  template <typename T>
  Request isend(std::span<const T> data, int dest, int tag) const {
    // Eager buffered transport: the send completes immediately; the Request
    // exists so call sites keep MPI-shaped structure.
    send(data, dest, tag);
    return Request([] {});
  }

  template <typename T>
  Request irecv(std::span<T> data, int src, int tag) const {
    const Comm* self = this;
    return Request([self, data, src, tag] {
      const std::size_t n = self->recv(data, src, tag);
      AP3_REQUIRE_MSG(n == data.size(),
                      "irecv expected exactly " << data.size()
                                                << " elements, got " << n);
    });
  }

  // --- topology -------------------------------------------------------------
  /// Returns a view of this communicator carrying `topology` (rank count must
  /// match size(); nullptr detaches). Collectives on the returned Comm use
  /// the topology's canonical supernode-blocked reduction order and default
  /// to `default_algo` when called without an explicit policy. The bare Comm
  /// is untouched — attaching a topology never changes existing call sites.
  Comm with_topology(std::shared_ptr<const Topology> topology,
                     CollectiveAlgo default_algo =
                         CollectiveAlgo::kHierarchical) const;
  /// Attached topology (nullptr on a bare Comm).
  const Topology* topology() const { return topology_.get(); }
  CollectiveAlgo default_algo() const { return default_algo_; }

  // --- collectives ----------------------------------------------------------
  void barrier() const;

  template <typename T>
  void bcast(std::span<T> data, int root, CollectivePolicy policy = {}) const;

  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root,
                        CollectivePolicy policy = {}) const;

  template <typename T>
  std::vector<T> allgather(std::span<const T> local,
                           CollectivePolicy policy = {}) const;

  /// Variable-size allgather; returns concatenation in rank order plus
  /// per-rank counts.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local,
                            std::vector<std::size_t>* counts = nullptr,
                            CollectivePolicy policy = {}) const;

  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op, int root,
              CollectivePolicy policy = {}) const;

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                 CollectivePolicy policy = {}) const;

  template <typename T>
  T allreduce_value(T value, ReduceOp op, CollectivePolicy policy = {}) const {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op,
              policy);
    return out;
  }

  /// Fixed-block all-to-all: send_data has size()*block elements.
  template <typename T>
  std::vector<T> alltoall(std::span<const T> send_data, std::size_t block,
                          CollectivePolicy policy = {}) const;

  /// Variable all-to-all: send_counts[r] elements go to rank r; returns the
  /// received concatenation and fills recv_counts. With a topology and the
  /// hierarchical algorithm, inter-supernode chunks are aggregated at
  /// supernode leaders so each ordered supernode pair exchanges one combined
  /// message; the result is assembled in source-rank order and is bitwise
  /// identical to the flat exchange.
  template <typename T>
  std::vector<T> alltoallv(std::span<const T> send_data,
                           std::span<const std::size_t> send_counts,
                           std::vector<std::size_t>& recv_counts,
                           CollectivePolicy policy = {}) const;

  /// Split into sub-communicators by color; rank order within a color follows
  /// (key, rank). This is how AP3ESM partitions ranks into task domains —
  /// and, with Topology, the only way to build subgroups. An attached
  /// topology is projected onto each subgroup (Topology::induced), so task
  /// domains inherit the machine shape.
  Comm split(int color, int key) const;

 private:
  friend void run(int, const std::function<void(Comm&)>&);
  friend void run(int, const WorldOptions&, const std::function<void(Comm&)>&);
  Comm(World* world, std::vector<int> group, int rank, int comm_id,
       std::uint64_t split_epoch)
      : world_(world),
        group_(std::move(group)),
        rank_(rank),
        comm_id_(comm_id),
        split_epoch_(split_epoch) {}

  template <typename T>
  static void check_type(const detail::Message& m) {
    AP3_REQUIRE_MSG(m.type_hash == typeid(T).hash_code(),
                    "message type mismatch (tag " << m.tag << " from rank "
                                                  << m.src << ")");
  }

  void post(int dest, int tag, std::size_t type_hash,
            std::span<const std::byte> bytes) const;
  detail::Message take(int src, int tag) const;
  int world_rank_of(int comm_rank) const;

  /// Resolve a per-call policy against the Comm default. Hierarchical needs
  /// an attached topology; without one it degrades to flat.
  bool hierarchical(CollectivePolicy policy) const {
    const CollectiveAlgo algo = policy.algo == CollectiveAlgo::kDefault
                                    ? default_algo_
                                    : policy.algo;
    return algo == CollectiveAlgo::kHierarchical && topology_ != nullptr;
  }

  // Hierarchical / topology-blocked implementations (see bottom of file).
  template <typename T>
  void bcast_hier(std::span<T> data, int root) const;
  template <typename T>
  void reduce_blocked(std::span<const T> in, std::span<T> out, ReduceOp op,
                      int root) const;
  template <typename T>
  void reduce_hier(std::span<const T> in, std::span<T> out, ReduceOp op,
                   int root) const;
  template <typename T>
  std::vector<T> alltoallv_hier(std::span<const T> send_data,
                                std::span<const std::size_t> send_counts,
                                std::vector<std::size_t>& recv_counts) const;

  template <typename T>
  static void apply_op(std::span<T> acc, std::span<const T> in, ReduceOp op) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] = acc[i] + in[i]; break;
        case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::kMax: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
      }
    }
  }

  World* world_ = nullptr;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_ = 0;
  int comm_id_ = 0;
  mutable std::uint64_t split_epoch_ = 0;
  /// Machine shape for this communicator's ranks (nullptr: bare/flat Comm).
  /// Shared between copies and propagated by split().
  std::shared_ptr<const Topology> topology_;
  CollectiveAlgo default_algo_ = CollectiveAlgo::kFlat;
};

/// Launch `fn` on `nranks` ranks (threads) sharing one World. Exceptions in
/// any rank are captured and rethrown (first by rank order) after join.
void run(int nranks, const std::function<void(Comm&)>& fn);

/// Same, with World options (e.g. a deterministic fault schedule). Ranks can
/// inspect injection state during the run via `comm.world().fault_log()` /
/// `fault_stats()`.
void run(int nranks, const WorldOptions& options,
         const std::function<void(Comm&)>& fn);

// ---- template implementations ---------------------------------------------
//
// Reserved internal tag space (tags < -999):
//   -1000 bcast         -1001 gather        -1002 allgatherv
//   -1003 reduce        -1004 alltoall      -1005 alltoallv
//   -1010 hier reduce up (member -> leader)
//   -1011 hier reduce mid (leader -> root)
//   -1012 hier bcast (root -> leaders)      -1013 hier bcast (leader -> members)
//   -1014 hier alltoallv intra (peer -> peer, count then payload)
//   -1015 hier alltoallv up   (member -> leader, header then payload)
//   -1016 hier alltoallv mid  (leader -> leader, header then payload)
//   -1017 hier alltoallv down (leader -> member, header then payload)

template <typename T>
void Comm::bcast(std::span<T> data, int root, CollectivePolicy policy) const {
  AP3_REQUIRE(root >= 0 && root < size());
  const bool hier = hierarchical(policy);
  detail::CollScope scope("bcast", hier ? "hier" : "flat");
  if (hier) {
    bcast_hier(data, root);
    return;
  }
  constexpr int kTag = -1000;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(std::span<const T>(data.data(), data.size()), r, kTag);
    }
  } else {
    const std::size_t n = recv(data, root, kTag);
    AP3_REQUIRE(n == data.size());
  }
}

template <typename T>
void Comm::bcast_hier(std::span<T> data, int root) const {
  // Two-level fan-out: root -> supernode leaders over the (oversubscribed)
  // inter-supernode links, then each leader -> its members intra-supernode.
  // Pure data movement, so bitwise identical to the flat star.
  const Topology& topo = *topology_;
  constexpr int kTagLeaders = -1012;
  constexpr int kTagMembers = -1013;
  const int my_sn = topo.supernode_of(rank_);
  if (rank_ == root) {
    for (int s = 0; s < topo.num_supernodes(); ++s) {
      const int l = topo.leader(s);
      if (l == root) continue;
      send(std::span<const T>(data.data(), data.size()), l, kTagLeaders);
    }
  } else if (topo.is_leader(rank_)) {
    const std::size_t n = recv(data, root, kTagLeaders);
    AP3_REQUIRE(n == data.size());
  }
  if (topo.is_leader(rank_)) {
    for (int m : topo.members(my_sn)) {
      if (m == rank_ || m == root) continue;
      send(std::span<const T>(data.data(), data.size()), m, kTagMembers);
    }
  } else if (rank_ != root) {
    const std::size_t n = recv(data, topo.leader(my_sn), kTagMembers);
    AP3_REQUIRE(n == data.size());
  }
}

template <typename T>
std::vector<T> Comm::gather(std::span<const T> local, int root,
                            CollectivePolicy policy) const {
  // Root-star wire regardless of policy (a gather concentrates all bytes at
  // the root either way); the policy still labels the traffic counters.
  detail::CollScope scope("gather", hierarchical(policy) ? "hier" : "flat");
  constexpr int kTag = -1001;
  if (rank_ == root) {
    std::vector<T> out(local.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        std::copy(local.begin(), local.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(r * local.size()));
      } else {
        std::span<T> slot(out.data() + r * local.size(), local.size());
        const std::size_t n = recv(slot, r, kTag);
        AP3_REQUIRE(n == local.size());
      }
    }
    return out;
  }
  send(local, root, kTag);
  return {};
}

template <typename T>
std::vector<T> Comm::allgather(std::span<const T> local,
                               CollectivePolicy policy) const {
  detail::CollScope scope("allgather", hierarchical(policy) ? "hier" : "flat");
  std::vector<T> out = gather(local, 0, policy);
  if (rank_ != 0) out.resize(local.size() * static_cast<std::size_t>(size()));
  bcast(std::span<T>(out), 0, policy);  // hierarchical policy pays off here
  return out;
}

template <typename T>
std::vector<T> Comm::allgatherv(std::span<const T> local,
                                std::vector<std::size_t>* counts,
                                CollectivePolicy policy) const {
  detail::CollScope scope("allgatherv", hierarchical(policy) ? "hier" : "flat");
  const std::uint64_t mine = local.size();
  std::vector<std::uint64_t> sizes =
      allgather(std::span<const std::uint64_t>(&mine, 1), policy);
  constexpr int kTag = -1002;
  std::size_t total = 0;
  for (std::uint64_t s : sizes) total += s;
  std::vector<T> out(total);
  if (rank_ == 0) {
    std::size_t offset = 0;
    for (int r = 0; r < size(); ++r) {
      std::span<T> slot(out.data() + offset, sizes[static_cast<size_t>(r)]);
      if (r == 0) {
        std::copy(local.begin(), local.end(), slot.begin());
      } else if (!slot.empty()) {
        const std::size_t n = recv(slot, r, kTag);
        AP3_REQUIRE(n == slot.size());
      }
      offset += sizes[static_cast<size_t>(r)];
    }
  } else if (!local.empty()) {
    send(local, 0, kTag);
  }
  bcast(std::span<T>(out), 0, policy);
  if (counts) counts->assign(sizes.begin(), sizes.end());
  return out;
}

template <typename T>
void Comm::reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                  int root, CollectivePolicy policy) const {
  AP3_REQUIRE(in.size() == out.size());
  const bool hier = hierarchical(policy);
  detail::CollScope scope("reduce", hier ? "hier" : "flat");
  if (hier) {
    reduce_hier(in, out, op, root);
    return;
  }
  if (topology_ != nullptr) {
    // A topology fixes the canonical supernode-blocked fold order for every
    // algorithm, so flat and hierarchical agree bitwise (kSum is not
    // associative in floating point; the order must be pinned somewhere).
    reduce_blocked(in, out, op, root);
    return;
  }
  constexpr int kTag = -1003;
  if (rank_ == root) {
    std::copy(in.begin(), in.end(), out.begin());
    std::vector<T> buffer(in.size());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      const std::size_t n = recv(std::span<T>(buffer), r, kTag);
      AP3_REQUIRE(n == buffer.size());
      apply_op(out, std::span<const T>(buffer), op);
    }
  } else {
    send(in, root, kTag);
  }
}

template <typename T>
void Comm::reduce_blocked(std::span<const T> in, std::span<T> out,
                          ReduceOp op, int root) const {
  // Flat wire (everyone -> root), canonical blocked fold at the root: fold
  // each supernode's members in rank order into a partial, then fold the
  // partials in supernode order. reduce_hier computes the identical
  // sequence with the partials formed at the leaders.
  const Topology& topo = *topology_;
  constexpr int kTag = -1003;
  if (rank_ != root) {
    send(in, root, kTag);
    return;
  }
  std::vector<T> partial(in.size());
  std::vector<T> buffer(in.size());
  bool first_sn = true;
  for (int s = 0; s < topo.num_supernodes(); ++s) {
    bool first_member = true;
    for (int m : topo.members(s)) {
      std::span<const T> contrib;
      if (m == rank_) {
        contrib = in;
      } else {
        const std::size_t n = recv(std::span<T>(buffer), m, kTag);
        AP3_REQUIRE(n == buffer.size());
        contrib = buffer;
      }
      if (first_member) {
        std::copy(contrib.begin(), contrib.end(), partial.begin());
        first_member = false;
      } else {
        apply_op(std::span<T>(partial), contrib, op);
      }
    }
    if (first_sn) {
      std::copy(partial.begin(), partial.end(), out.begin());
      first_sn = false;
    } else {
      apply_op(out, std::span<const T>(partial), op);
    }
  }
}

template <typename T>
void Comm::reduce_hier(std::span<const T> in, std::span<T> out, ReduceOp op,
                       int root) const {
  // Members -> leader (intra links), leaders -> root (one partial per
  // supernode over the inter links), identical blocked fold order to
  // reduce_blocked: leaders fold members in rank order (the leader is the
  // lowest member, so its own contribution seeds the partial), the root
  // folds partials in supernode order.
  const Topology& topo = *topology_;
  constexpr int kTagUp = -1010;
  constexpr int kTagMid = -1011;
  const int my_sn = topo.supernode_of(rank_);
  std::vector<T> partial;
  if (topo.is_leader(rank_)) {
    partial.assign(in.begin(), in.end());
    std::vector<T> buffer(in.size());
    for (int m : topo.members(my_sn)) {
      if (m == rank_) continue;
      const std::size_t n = recv(std::span<T>(buffer), m, kTagUp);
      AP3_REQUIRE(n == buffer.size());
      apply_op(std::span<T>(partial), std::span<const T>(buffer), op);
    }
    if (rank_ != root)
      send(std::span<const T>(partial), root, kTagMid);
  } else {
    send(in, topo.leader(my_sn), kTagUp);
  }
  if (rank_ == root) {
    std::vector<T> buffer(in.size());
    bool first = true;
    for (int s = 0; s < topo.num_supernodes(); ++s) {
      const int l = topo.leader(s);
      std::span<const T> contrib;
      if (l == rank_) {
        contrib = partial;
      } else {
        const std::size_t n = recv(std::span<T>(buffer), l, kTagMid);
        AP3_REQUIRE(n == buffer.size());
        contrib = buffer;
      }
      if (first) {
        std::copy(contrib.begin(), contrib.end(), out.begin());
        first = false;
      } else {
        apply_op(out, contrib, op);
      }
    }
  }
}

template <typename T>
void Comm::allreduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                     CollectivePolicy policy) const {
  // Built over reduce+bcast, whose own (innermost) scopes attribute the
  // bytes — the traffic really is a reduce followed by a bcast on this
  // transport. This scope records the allreduce call itself.
  detail::CollScope scope("allreduce", hierarchical(policy) ? "hier" : "flat");
  reduce(in, out, op, 0, policy);
  bcast(out, 0, policy);
}

template <typename T>
std::vector<T> Comm::alltoall(std::span<const T> send_data, std::size_t block,
                              CollectivePolicy policy) const {
  AP3_REQUIRE(send_data.size() == block * static_cast<std::size_t>(size()));
  detail::CollScope scope("alltoall", hierarchical(policy) ? "hier" : "flat");
  constexpr int kTag = -1004;
  std::vector<T> out(send_data.size());
  // Post all sends (eager), then receive in rank order.
  for (int r = 0; r < size(); ++r) {
    std::span<const T> chunk(send_data.data() + r * block, block);
    if (r == rank_) {
      std::copy(chunk.begin(), chunk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(r * block));
    } else {
      send(chunk, r, kTag);
    }
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    std::span<T> slot(out.data() + r * block, block);
    const std::size_t n = recv(slot, r, kTag);
    AP3_REQUIRE(n == block);
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoallv(std::span<const T> send_data,
                               std::span<const std::size_t> send_counts,
                               std::vector<std::size_t>& recv_counts,
                               CollectivePolicy policy) const {
  AP3_REQUIRE(send_counts.size() == static_cast<std::size_t>(size()));
  std::size_t check = 0;
  for (std::size_t c : send_counts) check += c;
  AP3_REQUIRE(check == send_data.size());
  const bool hier = hierarchical(policy);
  detail::CollScope scope("alltoallv", hier ? "hier" : "flat");
  if (hier) return alltoallv_hier(send_data, send_counts, recv_counts);

  // Exchange counts with a fixed-block alltoall, then the payloads.
  std::vector<std::uint64_t> counts64(send_counts.begin(), send_counts.end());
  std::vector<std::uint64_t> got =
      alltoall(std::span<const std::uint64_t>(counts64), 1, policy);
  recv_counts.assign(got.begin(), got.end());

  constexpr int kTag = -1005;
  std::size_t total = 0;
  for (std::size_t c : recv_counts) total += c;
  std::vector<T> out(total);

  std::size_t send_offset = 0;
  std::vector<std::size_t> send_offsets(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    send_offsets[static_cast<size_t>(r)] = send_offset;
    send_offset += send_counts[static_cast<size_t>(r)];
  }
  std::size_t recv_offset = 0;
  std::vector<std::size_t> recv_offsets(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    recv_offsets[static_cast<size_t>(r)] = recv_offset;
    recv_offset += recv_counts[static_cast<size_t>(r)];
  }

  for (int r = 0; r < size(); ++r) {
    std::span<const T> chunk(send_data.data() + send_offsets[static_cast<size_t>(r)],
                             send_counts[static_cast<size_t>(r)]);
    if (r == rank_) {
      std::copy(chunk.begin(), chunk.end(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  recv_offsets[static_cast<size_t>(r)]));
    } else if (!chunk.empty()) {
      send(chunk, r, kTag);
    }
  }
  for (int r = 0; r < size(); ++r) {
    if (r == rank_ || recv_counts[static_cast<size_t>(r)] == 0) continue;
    std::span<T> slot(out.data() + recv_offsets[static_cast<size_t>(r)],
                      recv_counts[static_cast<size_t>(r)]);
    const std::size_t n = recv(slot, r, kTag);
    AP3_REQUIRE(n == slot.size());
  }
  return out;
}

template <typename T>
std::vector<T> Comm::alltoallv_hier(
    std::span<const T> send_data, std::span<const std::size_t> send_counts,
    std::vector<std::size_t>& recv_counts) const {
  // Three-hop exchange. Intra-supernode chunks go peer-to-peer directly
  // (count, then payload). Inter-supernode chunks climb to the supernode
  // leader (header of (dst, count) entries plus one combined payload), the
  // leaders exchange ONE combined message per ordered supernode pair —
  // header of (src, dst, count) entries sorted by (src, dst) — and each
  // leader redistributes to its members with (src, count) headers. Output is
  // assembled in global source-rank order, so the bytes are identical to the
  // flat exchange; only the routing differs.
  //
  // Deadlock-free on the eager transport: every rank posts all sends that do
  // not depend on a receive before blocking (members: intra + up, then
  // receive; leaders: intra, then up-receives gate only the mid sends).
  const Topology& topo = *topology_;
  constexpr int kTagIntra = -1014;
  constexpr int kTagUp = -1015;
  constexpr int kTagMid = -1016;
  constexpr int kTagDown = -1017;
  const int n = size();
  const int my_sn = topo.supernode_of(rank_);
  const int my_leader = topo.leader(my_sn);
  const int num_sn = topo.num_supernodes();

  std::vector<std::size_t> send_offsets(static_cast<std::size_t>(n));
  std::size_t acc = 0;
  for (int r = 0; r < n; ++r) {
    send_offsets[static_cast<std::size_t>(r)] = acc;
    acc += send_counts[static_cast<std::size_t>(r)];
  }
  const auto chunk = [&](int r) {
    return std::span<const T>(
        send_data.data() + send_offsets[static_cast<std::size_t>(r)],
        send_counts[static_cast<std::size_t>(r)]);
  };

  // Phase 0 — intra-supernode chunks peer-to-peer: count then payload.
  for (int r : topo.members(my_sn)) {
    if (r == rank_) continue;
    const std::uint64_t cnt = send_counts[static_cast<std::size_t>(r)];
    send_value(cnt, r, kTagIntra);
    if (cnt > 0) send(chunk(r), r, kTagIntra);
  }

  // Phase 1 (up) — non-leaders ship all inter-supernode chunks to the
  // leader: header [k, (dst, cnt) x k] (nonzero entries only, dst ascending),
  // then the concatenated payload when non-empty.
  if (rank_ != my_leader) {
    std::vector<std::uint64_t> header{0};
    std::vector<T> payload;
    for (int r = 0; r < n; ++r) {
      if (topo.supernode_of(r) == my_sn ||
          send_counts[static_cast<std::size_t>(r)] == 0)
        continue;
      header.push_back(static_cast<std::uint64_t>(r));
      header.push_back(send_counts[static_cast<std::size_t>(r)]);
      const auto c = chunk(r);
      payload.insert(payload.end(), c.begin(), c.end());
      ++header[0];
    }
    send(std::span<const std::uint64_t>(header), my_leader, kTagUp);
    if (!payload.empty())
      send(std::span<const T>(payload), my_leader, kTagUp);
  }

  recv_counts.assign(static_cast<std::size_t>(n), 0);
  recv_counts[static_cast<std::size_t>(rank_)] =
      send_counts[static_cast<std::size_t>(rank_)];
  // Payload destined to me, bucketed by source rank for final assembly.
  std::vector<std::vector<T>> from_src(static_cast<std::size_t>(n));

  if (rank_ == my_leader) {
    // Collect this supernode's outbound inter traffic, grouped by
    // destination supernode. Iterating members in ascending rank order (the
    // leader first) with destinations ascending inside each header keeps
    // every group sorted by (src, dst) without an explicit sort.
    struct Entry {
      int src;
      int dst;
      std::vector<T> data;
    };
    std::vector<std::vector<Entry>> outbound(static_cast<std::size_t>(num_sn));
    for (int r = 0; r < n; ++r) {
      const int sn = topo.supernode_of(r);
      if (sn == my_sn || send_counts[static_cast<std::size_t>(r)] == 0)
        continue;
      const auto c = chunk(r);
      outbound[static_cast<std::size_t>(sn)].push_back(
          {rank_, r, std::vector<T>(c.begin(), c.end())});
    }
    for (int m : topo.members(my_sn)) {
      if (m == rank_) continue;
      std::vector<std::uint64_t> header(1 + 2 * static_cast<std::size_t>(n));
      const std::size_t got =
          recv(std::span<std::uint64_t>(header), m, kTagUp);
      const std::uint64_t k = header[0];
      AP3_REQUIRE(got == 1 + 2 * k);
      std::size_t total = 0;
      for (std::uint64_t e = 0; e < k; ++e) total += header[2 + 2 * e];
      std::vector<T> payload(total);
      if (total > 0) {
        const std::size_t pn = recv(std::span<T>(payload), m, kTagUp);
        AP3_REQUIRE(pn == total);
      }
      std::size_t offset = 0;
      for (std::uint64_t e = 0; e < k; ++e) {
        const int dst = static_cast<int>(header[1 + 2 * e]);
        const std::size_t cnt = header[2 + 2 * e];
        outbound[static_cast<std::size_t>(topo.supernode_of(dst))].push_back(
            {m, dst,
             std::vector<T>(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                            payload.begin() +
                                static_cast<std::ptrdiff_t>(offset + cnt))});
        offset += cnt;
      }
    }

    // Phase 2 (mid) — one combined message per ordered supernode pair, sent
    // even when empty so every leader's receive sequence is deterministic.
    for (int t = 0; t < num_sn; ++t) {
      if (t == my_sn) continue;
      const std::vector<Entry>& entries =
          outbound[static_cast<std::size_t>(t)];
      std::vector<std::uint64_t> header{
          static_cast<std::uint64_t>(entries.size())};
      std::vector<T> payload;
      for (const Entry& e : entries) {
        header.push_back(static_cast<std::uint64_t>(e.src));
        header.push_back(static_cast<std::uint64_t>(e.dst));
        header.push_back(static_cast<std::uint64_t>(e.data.size()));
        payload.insert(payload.end(), e.data.begin(), e.data.end());
      }
      send(std::span<const std::uint64_t>(header), topo.leader(t), kTagMid);
      if (!payload.empty())
        send(std::span<const T>(payload), topo.leader(t), kTagMid);
    }

    // Receive mid from every other leader in supernode order; entries arrive
    // (src asc, dst asc) within each message, so per-member collections end
    // up sorted by (supernode(src), src) — the down-header order.
    struct InEntry {
      int src;
      std::vector<T> data;
    };
    std::vector<std::vector<InEntry>> for_member(static_cast<std::size_t>(n));
    for (int s = 0; s < num_sn; ++s) {
      if (s == my_sn) continue;
      const std::size_t max_entries =
          topo.members(s).size() * topo.members(my_sn).size();
      std::vector<std::uint64_t> header(1 + 3 * max_entries);
      const std::size_t got =
          recv(std::span<std::uint64_t>(header), topo.leader(s), kTagMid);
      const std::uint64_t k = header[0];
      AP3_REQUIRE(got == 1 + 3 * k);
      std::size_t total = 0;
      for (std::uint64_t e = 0; e < k; ++e) total += header[3 + 3 * e];
      std::vector<T> payload(total);
      if (total > 0) {
        const std::size_t pn =
            recv(std::span<T>(payload), topo.leader(s), kTagMid);
        AP3_REQUIRE(pn == total);
      }
      std::size_t offset = 0;
      for (std::uint64_t e = 0; e < k; ++e) {
        const int src = static_cast<int>(header[1 + 3 * e]);
        const int dst = static_cast<int>(header[2 + 3 * e]);
        const std::size_t cnt = header[3 + 3 * e];
        std::vector<T> data(
            payload.begin() + static_cast<std::ptrdiff_t>(offset),
            payload.begin() + static_cast<std::ptrdiff_t>(offset + cnt));
        offset += cnt;
        if (dst == rank_) {
          recv_counts[static_cast<std::size_t>(src)] = cnt;
          from_src[static_cast<std::size_t>(src)] = std::move(data);
        } else {
          for_member[static_cast<std::size_t>(dst)].push_back(
              {src, std::move(data)});
        }
      }
    }

    // Phase 3 (down) — redistribute to members: header [k, (src, cnt) x k],
    // then the concatenated payload when non-empty.
    for (int m : topo.members(my_sn)) {
      if (m == rank_) continue;
      const std::vector<InEntry>& entries =
          for_member[static_cast<std::size_t>(m)];
      std::vector<std::uint64_t> header{
          static_cast<std::uint64_t>(entries.size())};
      std::vector<T> payload;
      for (const InEntry& e : entries) {
        header.push_back(static_cast<std::uint64_t>(e.src));
        header.push_back(static_cast<std::uint64_t>(e.data.size()));
        payload.insert(payload.end(), e.data.begin(), e.data.end());
      }
      send(std::span<const std::uint64_t>(header), m, kTagDown);
      if (!payload.empty()) send(std::span<const T>(payload), m, kTagDown);
    }
  } else {
    // Non-leader: one down message from the leader carries everything that
    // originated outside this supernode.
    std::vector<std::uint64_t> header(1 + 2 * static_cast<std::size_t>(n));
    const std::size_t got =
        recv(std::span<std::uint64_t>(header), my_leader, kTagDown);
    const std::uint64_t k = header[0];
    AP3_REQUIRE(got == 1 + 2 * k);
    std::size_t total = 0;
    for (std::uint64_t e = 0; e < k; ++e) total += header[2 + 2 * e];
    std::vector<T> payload(total);
    if (total > 0) {
      const std::size_t pn =
          recv(std::span<T>(payload), my_leader, kTagDown);
      AP3_REQUIRE(pn == total);
    }
    std::size_t offset = 0;
    for (std::uint64_t e = 0; e < k; ++e) {
      const int src = static_cast<int>(header[1 + 2 * e]);
      const std::size_t cnt = header[2 + 2 * e];
      recv_counts[static_cast<std::size_t>(src)] = cnt;
      from_src[static_cast<std::size_t>(src)]
          .assign(payload.begin() + static_cast<std::ptrdiff_t>(offset),
                  payload.begin() + static_cast<std::ptrdiff_t>(offset + cnt));
      offset += cnt;
    }
  }

  // Intra receives (count then payload), any member order is fine — sources
  // are explicit.
  for (int r : topo.members(my_sn)) {
    if (r == rank_) continue;
    const std::uint64_t cnt = recv_value<std::uint64_t>(r, kTagIntra);
    recv_counts[static_cast<std::size_t>(r)] = cnt;
    if (cnt > 0) {
      from_src[static_cast<std::size_t>(r)].resize(cnt);
      const std::size_t pn = recv(
          std::span<T>(from_src[static_cast<std::size_t>(r)]), r, kTagIntra);
      AP3_REQUIRE(pn == cnt);
    }
  }

  // Assemble in global source-rank order — byte-for-byte the flat layout.
  std::size_t total = 0;
  for (std::size_t c : recv_counts) total += c;
  std::vector<T> out;
  out.reserve(total);
  for (int r = 0; r < n; ++r) {
    if (r == rank_) {
      const auto c = chunk(rank_);
      out.insert(out.end(), c.begin(), c.end());
    } else {
      const std::vector<T>& data = from_src[static_cast<std::size_t>(r)];
      out.insert(out.end(), data.begin(), data.end());
    }
  }
  return out;
}

}  // namespace ap3::par
