// AiPhysicsSuite — the facade of §5.2.1's AI-powered resolution-adaptive
// physics suite: AI tendency module + AI radiation diagnosis module, with
// normalization handled inside. The conventional physics diagnostic module
// lives with the atmosphere component (it is the training-truth generator);
// this class is the inference engine the physics–dynamics coupling interface
// calls instead of the conventional suite.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "ai/engine.hpp"
#include "ai/models.hpp"
#include "ai/normalizer.hpp"

namespace ap3::ai {

struct SuiteOutput {
  tensor::Tensor tendencies;  ///< (batch, 4, levels): dU, dV, dT, dQ
  tensor::Tensor fluxes;      ///< (batch, 2): gsw, glw
};

class AiPhysicsSuite {
 public:
  explicit AiPhysicsSuite(const SuiteConfig& config);

  /// Fit input/output normalizers from a training corpus. Must be called
  /// (or normalizers loaded) before compute().
  void fit_normalizers(const tensor::Tensor& columns,
                       const tensor::Tensor& tendencies,
                       const tensor::Tensor& rad_inputs,
                       const tensor::Tensor& fluxes);

  /// Inference: columns (batch, 5, levels) raw physical units; tskin/coszr
  /// per batch row. Returns denormalized tendencies and fluxes. Routed
  /// through the batched InferenceEngine (engine()) — micro-batching,
  /// execution space and precision policy come from the engine config.
  SuiteOutput compute(const tensor::Tensor& columns,
                      std::span<const double> tskin,
                      std::span<const double> coszr);

  /// The suite's inference engine (created on first use with the default
  /// config: kSerial, fp32 — bitwise the pre-engine serial path).
  InferenceEngine& engine();
  /// Reconfigure the engine (backend, precision policy, micro-batching,
  /// overlap, verification).
  void set_engine_config(const EngineConfig& config) {
    engine().set_config(config);
  }

  /// Assemble the flat radiation-MLP input row (normalized column + tskin +
  /// coszr), exposed for the trainer.
  tensor::Tensor make_rad_inputs(const tensor::Tensor& columns,
                                 std::span<const double> tskin,
                                 std::span<const double> coszr) const;

  TendencyCnn& cnn() { return cnn_; }
  RadiationMlp& mlp() { return mlp_; }
  const SuiteConfig& config() const { return config_; }
  bool normalized() const { return fitted_; }

  /// Install externally restored normalizers (deserialization path).
  void set_normalizers(ChannelNormalizer input, ChannelNormalizer tendency,
                       ChannelNormalizer rad_input, ChannelNormalizer flux) {
    input_norm_ = std::move(input);
    tendency_norm_ = std::move(tendency);
    rad_input_norm_ = std::move(rad_input);
    flux_norm_ = std::move(flux);
    fitted_ = true;
  }

  ChannelNormalizer& input_norm() { return input_norm_; }
  ChannelNormalizer& tendency_norm() { return tendency_norm_; }
  ChannelNormalizer& rad_input_norm() { return rad_input_norm_; }
  ChannelNormalizer& flux_norm() { return flux_norm_; }

  /// Total tensor-kernel flops per column per physics step.
  double flops_per_column() const {
    return cnn_.flops_per_column() + mlp_.flops_per_column();
  }

 private:
  SuiteConfig config_;
  TendencyCnn cnn_;
  RadiationMlp mlp_;
  ChannelNormalizer input_norm_, tendency_norm_, rad_input_norm_, flux_norm_;
  bool fitted_ = false;
  std::unique_ptr<InferenceEngine> engine_;
};

/// Serialize a trained suite (both networks' weights + all four
/// normalizers) to a binary file; load restores bit-identical inference.
/// This is the §5.2.1 "flexibility for adaptation across different
/// architectures": weights trained once deploy anywhere.
void save_suite(AiPhysicsSuite& suite, const std::string& path);
std::shared_ptr<AiPhysicsSuite> load_suite(const SuiteConfig& config,
                                           const std::string& path);

}  // namespace ap3::ai
