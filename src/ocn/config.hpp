// Configuration of the LICOM-mini ocean component.
//
// §6.1: at 1 km LICOM uses barotropic/baroclinic/tracer timesteps of
// 2 s / 20 s / 20 s over 80 vertical levels — a 10:1 barotropic split with
// tracers advanced on the baroclinic step. Those ratios are kept at every
// resolution; the barotropic step follows the external-gravity-wave CFL.
#pragma once

#include <cstdint>

#include "grid/tripolar.hpp"
#include "pp/exec.hpp"

namespace ap3::ocn {

struct OcnConfig {
  grid::TripolarConfig grid{120, 80, 20};
  int barotropic_substeps = 10;   ///< per baroclinic step (20 s / 2 s)
  double cfl_fraction = 0.15;
  double drag_per_second = 1.0e-5;   ///< barotropic bottom drag
  double horizontal_diffusion = 1.0e3;  ///< tracer diffusivity [m²/s]
  bool exclude_non_ocean = false;  ///< §5.2.2 active-point compaction
  bool mixed_precision = false;    ///< §5.2.3 group-scaled state
  pp::ExecSpace exec_space = pp::ExecSpace::kSerial;
  /// SIMD pack width for the tracer advection/diffusion kernel: one of
  /// {1,2,4,8,16}, or 0 for the scalar reference sweep. Bitwise-neutral
  /// (pp/pack.hpp): lanes are independent grid columns of one row.
  std::size_t pack_width = pp::kDefaultPackWidth;
  std::uint64_t seed = 20230725;

  // Synthetic straggler stall for the load-rebalancing bench and tests: every
  // baroclinic step sleeps stall_seconds_per_point × (owned active 3-D points
  // whose global column satisfies i >= stall_i_begin or j >= stall_j_begin),
  // and reports the slept time on the "ocn:busy_seconds" obs counter (the
  // balance::Rebalanceable busy channel). Models waiting-dominated imbalance
  // (I/O stalls, fault retransmissions) rather than compute skew; never
  // touches model state, so runs with and without rebalancing stay
  // bit-identical.
  double stall_seconds_per_point = 0.0;
  int stall_i_begin = -1;  ///< -1: no column-band stall
  int stall_j_begin = -1;  ///< -1: no row-band stall

  /// External gravity-wave speed for a 5500 m column.
  double wave_speed() const;
  double barotropic_dt_seconds() const;
  double baroclinic_dt_seconds() const {
    return barotropic_dt_seconds() * barotropic_substeps;
  }
  /// Tracer step equals the baroclinic step (paper: both 20 s).
  double tracer_dt_seconds() const { return baroclinic_dt_seconds(); }
};

}  // namespace ap3::ocn
