// Interactive-ish explorer for the calibrated performance model: predict
// SYPD for any component/resolution/scale without a supercomputer.
//
//   ./scaling_explorer [atm_res_km] [ocn_res_km] [nodes]
#include <cstdio>
#include <cstdlib>

#include "perf/scaling.hpp"

int main(int argc, char** argv) {
  using namespace ap3::perf;
  const double atm_km = argc > 1 ? std::atof(argv[1]) : 3.0;
  const double ocn_km = argc > 2 ? std::atof(argv[2]) : 2.0;
  const long long nodes = argc > 3 ? std::atoll(argv[3]) : 43691;

  ScalingModel model;
  const AtmWorkload atm = AtmWorkload::paper(atm_km);
  const OcnWorkload ocn = OcnWorkload::paper(ocn_km);

  std::printf("AP3ESM scaling explorer — Sunway OceanLight model\n");
  std::printf("==================================================\n");
  std::printf("atm %.0f km: %lld cells x %d levels; ocn %.0f km: %lldx%lldx%d\n",
              atm_km, static_cast<long long>(atm.cells), atm.nlev, ocn_km,
              static_cast<long long>(ocn.nx), static_cast<long long>(ocn.ny),
              ocn.nz);
  std::printf("nodes %lld (%lld cores)\n\n", nodes, nodes * 390LL);

  auto report = [](const char* label, const DayCost& cost) {
    const double sypd = sypd_from_seconds_per_day(cost.total());
    std::printf("  %-28s %8.3f SYPD   (compute %5.1f%%, comm %5.1f%%)\n",
                label, sypd, 100.0 * cost.compute / cost.total(),
                100.0 * cost.comm / cost.total());
  };

  std::printf("uncalibrated mechanistic predictions:\n");
  report("ATM  MPE only", model.atm_day_sunway(atm, nodes, CodePath::kMpe));
  report("ATM  CPE+OPT", model.atm_day_sunway(atm, nodes, CodePath::kCpeOpt));
  report("OCN  MPE only", model.ocn_day_sunway(ocn, nodes, CodePath::kMpe));
  report("OCN  CPE+OPT", model.ocn_day_sunway(ocn, nodes, CodePath::kCpeOpt));
  report("Coupled (75% atm domain)",
         model.coupled_day(atm, ocn, nodes, 0.75));

  std::printf("\nMPE -> CPE speedup at this scale: %.0fx (atm), %.0fx (ocn)\n",
              model.atm_day_sunway(atm, nodes, CodePath::kMpe).total() /
                  model.atm_day_sunway(atm, nodes, CodePath::kCpeOpt).total(),
              model.ocn_day_sunway(ocn, nodes, CodePath::kMpe).total() /
                  model.ocn_day_sunway(ocn, nodes, CodePath::kCpeOpt).total());
  std::printf("(paper bands: 112-184x atm, 84-150x ocn)\n");
  return 0;
}
