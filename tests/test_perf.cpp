// Tests for the performance model: network timing sanity, workload
// construction from Table 1, calibration exactness at anchors, predicted
// shapes (who wins, efficiency bands, MPE-vs-CPE speedups), and the Fig. 2
// SOTA fit.
#include <gtest/gtest.h>

#include <cmath>

#include "perf/network.hpp"
#include "perf/scaling.hpp"
#include "perf/sota.hpp"
#include "perf/workload.hpp"

namespace {

using namespace ap3::perf;

TEST(Network, LatencyAndBandwidthOrdering) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  // Bigger messages take longer; inter-supernode slower than intra.
  EXPECT_GT(net.p2p_seconds(1e6, false), net.p2p_seconds(1e6, true));
  EXPECT_GT(net.p2p_seconds(1e6, true), net.p2p_seconds(1e3, true));
  // Tiny messages are latency-bound.
  EXPECT_NEAR(net.p2p_seconds(8, true), net.latency_seconds(), 1e-7);
}

TEST(Network, OversubscriptionRatio) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  EXPECT_NEAR(net.inter_bandwidth_gbs() / net.intra_bandwidth_gbs(),
              3.0 / 16.0, 1e-12);
}

TEST(Network, AllreduceGrowsLogarithmically) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  const double t1k = net.allreduce_seconds(8, 1024);
  const double t1m = net.allreduce_seconds(8, 1048576);
  EXPECT_NEAR(t1m / t1k, 2.0, 0.01);  // 20 rounds vs 10
}

TEST(Network, HaloLeavesSupernodeAtScale) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  // Same message, more nodes: more traffic crosses the oversubscribed level.
  EXPECT_GT(net.halo_seconds(1e5, 4, 100000), net.halo_seconds(1e5, 4, 100));
}

TEST(Network, AllreduceSingleNodeIsFree) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1e6, 1), 0.0);
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1e6, 0), 0.0);
}

TEST(Network, AllreduceZeroBytesIsLatencyOnly) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  // 64 nodes: 6 rounds, up-and-down tree, no payload time.
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(0.0, 64),
                   12.0 * net.latency_seconds());
}

TEST(Network, AllreduceLevelSplitIsSmooth) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  // A job that fits inside one 256-node supernode pays only the leaf-switch
  // bandwidth. Beyond it the per-round cost blends the two levels by
  // intra_fraction — no all-or-nothing cliff at 257 nodes: one extra node
  // still keeps 255/256 of the partners on the fast level, and only at
  // large scale does the cost approach the oversubscribed rate.
  const double bytes = 1e7;
  const double per_round_256 = net.allreduce_seconds(bytes, 256) / (2.0 * 8.0);
  const double per_round_257 = net.allreduce_seconds(bytes, 257) / (2.0 * 9.0);
  const double per_round_64k =
      net.allreduce_seconds(bytes, 65536) / (2.0 * 16.0);
  EXPECT_DOUBLE_EQ(per_round_256, net.p2p_seconds(bytes, true));
  EXPECT_LT(per_round_257, 1.02 * per_round_256);  // no cliff
  EXPECT_GT(per_round_257, per_round_256);         // but strictly worse
  EXPECT_GT(per_round_64k, 0.9 * net.p2p_seconds(bytes, false));
  EXPECT_DOUBLE_EQ(net.intra_fraction(256), 1.0);
  EXPECT_NEAR(net.intra_fraction(65536), 255.0 / 65535.0, 1e-12);
}

TEST(Network, HierarchicalAllreduceBeatsFlatAtScale) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  const double bytes = 1e6;
  // Inside one supernode the two algorithms coincide (no inter rounds).
  EXPECT_DOUBLE_EQ(net.hierarchical_allreduce_seconds(bytes, 256),
                   net.allreduce_seconds(bytes, 256));
  // At scale the two-level tree pays the slow links only ceil(log2 S) times
  // instead of a blended share of every round.
  const long long nodes = 65536;  // 256 supernodes
  const double flat = net.allreduce_seconds(bytes, nodes);
  const double hier = net.hierarchical_allreduce_seconds(bytes, nodes);
  EXPECT_LT(hier, flat);
  const double expect_hier = 2.0 * 8.0 * net.p2p_seconds(bytes, true) +
                             2.0 * 8.0 * net.p2p_seconds(bytes, false);
  EXPECT_DOUBLE_EQ(hier, expect_hier);
}

TEST(Network, ExchangeSecondsPricesLevelsSeparately) {
  NetworkModel net(MachineKind::kSunwayOceanLight);
  LevelTraffic t;
  t.intra_bytes = 1e9;
  t.inter_bytes = 2e9;
  t.intra_messages = 3;
  t.inter_messages = 5;
  const double expected = 8.0 * net.latency_seconds() +
                          1e9 / (net.intra_bandwidth_gbs() * 1e9) +
                          2e9 / (net.inter_bandwidth_gbs() * 1e9);
  EXPECT_DOUBLE_EQ(net.exchange_seconds(t), expected);
  // Moving bytes from the inter to the intra level can only get cheaper.
  LevelTraffic local = t;
  local.intra_bytes += local.inter_bytes;
  local.inter_bytes = 0.0;
  EXPECT_LT(net.exchange_seconds(local), net.exchange_seconds(t));
}

TEST(Network, AllreduceOriseFabricIsFlat) {
  NetworkModel net(MachineKind::kOrise);
  // ORISE has no supernode boundary: per-round cost is scale-invariant.
  const double bytes = 1e7;
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(bytes, 256) / (2.0 * 8.0),
                   net.allreduce_seconds(bytes, 4096) / (2.0 * 12.0));
}

TEST(Workload, Table1Counts) {
  const AtmWorkload atm1 = AtmWorkload::paper(1.0);
  EXPECT_NEAR(static_cast<double>(atm1.cells), 3.4e8, 0.4e8);
  const OcnWorkload ocn1 = OcnWorkload::paper(1.0);
  EXPECT_EQ(ocn1.nx, 36000);
  EXPECT_EQ(ocn1.ny, 22018);
  EXPECT_NEAR(ocn1.total_points(), 6.3e10, 0.1e10);
}

TEST(Workload, SubcycleRatesMatchSection61) {
  const AtmWorkload atm = AtmWorkload::paper(3.0);
  EXPECT_DOUBLE_EQ(atm.dycore_steps_per_day, 10800.0);   // 8 s
  EXPECT_DOUBLE_EQ(atm.tracer_steps_per_day, 2880.0);    // 30 s
  EXPECT_DOUBLE_EQ(atm.physics_steps_per_day, 720.0);    // 120 s
  const OcnWorkload ocn = OcnWorkload::paper(2.0);
  EXPECT_DOUBLE_EQ(ocn.barotropic_steps_per_day, 43200.0);  // 2 s
  EXPECT_DOUBLE_EQ(ocn.baroclinic_steps_per_day, 4320.0);   // 20 s
}

TEST(Workload, ExclusionRemovesThirtyPercent) {
  const OcnWorkload with = OcnWorkload::paper(2.0, true);
  const OcnWorkload without = OcnWorkload::paper(2.0, false);
  EXPECT_NEAR(with.computed_points() / without.computed_points(), 0.70, 1e-9);
}

TEST(Scaling, MechanisticCpeBeatsMpeInPaperBand) {
  ScalingModel model;
  const AtmWorkload atm = AtmWorkload::paper(3.0, false);
  const long long nodes = 5462;
  const double mpe =
      model.atm_day_sunway(atm, nodes, CodePath::kMpe).total();
  const double cpe =
      model.atm_day_sunway(atm, nodes, CodePath::kCpeOpt).total();
  const double speedup = mpe / cpe;
  // §7.2: 112x–184x for the atmosphere (uncalibrated mechanistic band is
  // looser but must bracket the right order of magnitude).
  EXPECT_GT(speedup, 50.0);
  EXPECT_LT(speedup, 400.0);
}

TEST(Scaling, CalibrationHitsAnchorsExactly) {
  ScalingModel model;
  for (const ScalingCurve& curve : model.table2_strong_scaling()) {
    const CurvePoint& first = curve.points.front();
    const CurvePoint& last = curve.points.back();
    if (first.sypd_paper > 0) {
      EXPECT_NEAR(first.sypd_model / first.sypd_paper, 1.0, 1e-6)
          << curve.label;
    }
    if (last.sypd_paper > 0) {
      EXPECT_NEAR(last.sypd_model / last.sypd_paper, 1.0, 1e-6) << curve.label;
    }
  }
}

TEST(Scaling, ModelSypdMonotoneInNodes) {
  ScalingModel model;
  for (const ScalingCurve& curve : model.table2_strong_scaling()) {
    for (std::size_t k = 1; k < curve.points.size(); ++k)
      EXPECT_GT(curve.points[k].sypd_model, curve.points[k - 1].sypd_model)
          << curve.label << " point " << k;
  }
}

TEST(Scaling, InteriorPointsTrackPaperWhereReported) {
  // Interior anchors are NOT used in calibration; the model should land
  // within ~35 % of them (the shape claim of DESIGN.md §4).
  ScalingModel model;
  for (const ScalingCurve& curve : model.table2_strong_scaling()) {
    for (std::size_t k = 1; k + 1 < curve.points.size(); ++k) {
      const CurvePoint& p = curve.points[k];
      if (p.sypd_paper <= 0) continue;
      EXPECT_NEAR(p.sypd_model / p.sypd_paper, 1.0, 0.35)
          << curve.label << " @ " << p.cores << " cores";
    }
  }
}

TEST(Scaling, EfficienciesReproducePaperOrdering) {
  ScalingModel model;
  const auto curves = model.table2_strong_scaling();
  auto find = [&](const std::string& label) -> const ScalingCurve& {
    for (const auto& c : curves)
      if (c.label == label) return c;
    throw std::runtime_error("missing curve " + label);
  };
  // Calibrated endpoints mean efficiency matches the paper by construction;
  // assert the published values are reproduced.
  EXPECT_NEAR(find("3km ATM MPE").efficiency_model(), 0.246, 0.02);
  EXPECT_NEAR(find("3km ATM CPE+OPT").efficiency_model(), 0.403, 0.02);
  EXPECT_NEAR(find("1km ATM CPE+OPT").efficiency_model(), 0.515, 0.02);
  EXPECT_NEAR(find("2km OCN CPE+OPT").efficiency_model(), 0.494, 0.02);
  EXPECT_NEAR(find("1km OCN ORISE OPT").efficiency_model(), 0.543, 0.02);
  EXPECT_NEAR(find("AP3ESM 1v1").efficiency_model(), 0.907, 0.02);
  // MPE ocean scales almost ideally (it is compute-starved): PE ~ 0.886.
  EXPECT_GT(find("2km OCN MPE").efficiency_model(), 0.8);
}

TEST(Scaling, OriseOptBeatsOriginalRecord) {
  ScalingModel model;
  const auto curves = model.table2_strong_scaling();
  const ScalingCurve* original = nullptr;
  const ScalingCurve* opt = nullptr;
  for (const auto& c : curves) {
    if (c.label == "1km OCN ORISE Original") original = &c;
    if (c.label == "1km OCN ORISE OPT") opt = &c;
  }
  ASSERT_TRUE(original && opt);
  // §7.2: 1.2x over the 2024 Gordon Bell finalist record at full scale.
  EXPECT_GT(opt->points.back().sypd_model, 1.9);
  EXPECT_GT(opt->points.back().sypd_model /
                (original->points.back().sypd_model + 0.21),
            1.1);
}

TEST(Scaling, WeakScalingEfficienciesNearPaper) {
  ScalingModel model;
  const ScalingCurve atm = model.fig8b_weak_atm();
  std::vector<double> atm_points;
  for (double r : {25.0, 10.0, 6.0, 3.0})
    atm_points.push_back(AtmWorkload::paper(r).total_points());
  const double atm_eff = ScalingModel::weak_efficiency(atm, atm_points);
  EXPECT_GT(atm_eff, 0.6);   // paper: 87.85 %
  EXPECT_LT(atm_eff, 1.15);

  const ScalingCurve ocn = model.fig8b_weak_ocn();
  std::vector<double> ocn_points;
  for (double r : {10.0, 5.0, 3.0, 2.0})
    ocn_points.push_back(OcnWorkload::paper(r).computed_points());
  const double ocn_eff = ScalingModel::weak_efficiency(ocn, ocn_points);
  EXPECT_GT(ocn_eff, 0.7);   // paper: 96.57 %
  EXPECT_LT(ocn_eff, 1.15);
}

TEST(Scaling, CoupledDominatedByComponentsNotCoupler) {
  ScalingModel model;
  const AtmWorkload atm = AtmWorkload::paper(3.0);
  const OcnWorkload ocn = OcnWorkload::paper(2.0);
  const DayCost coupled = model.coupled_day(atm, ocn, 40000, 0.75);
  const DayCost atm_only =
      model.atm_day_sunway(atm, 30000, CodePath::kCpeOpt);
  // Coupler overhead exists but does not dominate.
  EXPECT_LT(coupled.total(), 2.0 * atm_only.total());
  EXPECT_GE(coupled.total(), atm_only.total() * 0.9);
}

// --- Fig. 2 -----------------------------------------------------------------------

TEST(Sota, SurveyHasPaperPoints) {
  const auto survey = sota_survey();
  int ap3 = 0;
  for (const auto& p : survey)
    if (p.is_ap3esm) ++ap3;
  EXPECT_EQ(ap3, 2);
  EXPECT_GE(survey.size(), 8u);
}

TEST(Sota, LinePassesThroughItsAnchors) {
  const LogLinearFit fit = fit_sota_line();
  const auto survey = sota_survey();
  for (const auto& p : survey) {
    if (p.model.rfind("CNRM", 0) == 0 || p.model.rfind("CESM", 0) == 0) {
      EXPECT_NEAR(fit.sypd_at(p.total_grid_points) / p.sypd, 1.0, 1e-9);
    }
  }
}

TEST(Sota, LineSlopesDownward) {
  const LogLinearFit fit = fit_sota_line();
  EXPECT_LT(fit.slope, 0.0);
  EXPECT_GT(fit.sypd_at(1e8), fit.sypd_at(1e10));
}

TEST(Sota, Ap3esmBeatsTheLine) {
  // The paper's headline: both AP3ESM configurations sit above the SOTA
  // dividing line despite the largest grid totals reported to date.
  for (const auto& p : sota_survey()) {
    if (p.is_ap3esm) {
      EXPECT_TRUE(beats_sota(p)) << p.model;
    }
  }
}

TEST(Sota, Ap3esmHasLargestGridTotals) {
  double max_other = 0.0, min_ap3 = 1e300;
  for (const auto& p : sota_survey()) {
    if (p.is_ap3esm)
      min_ap3 = std::min(min_ap3, p.total_grid_points);
    else
      max_other = std::max(max_other, p.total_grid_points);
  }
  EXPECT_GT(min_ap3, max_other);
}

}  // namespace

// --- §8 future work: computing-power-network federation ----------------------

#include "perf/federation.hpp"
#include "perf/measure.hpp"

namespace {

using namespace ap3::perf;

FederationConfig federation_case() {
  FederationConfig config;
  config.atm = AtmWorkload::paper(3.0);
  config.ocn = OcnWorkload::paper(2.0);
  config.atm_cluster_nodes = 30000;
  config.ocn_cluster_nodes = 12000;
  return config;
}

TEST(Federation, FastLinkApproachesSingleMachine) {
  ScalingModel base;
  FederationModel federation(base);
  FederationConfig config = federation_case();
  config.wan.bandwidth_gbs = 1e6;  // effectively infinite
  config.wan.latency_seconds = 1e-6;
  const FederationPrediction fast = federation.predict(config);
  const double single = federation.single_machine_sypd(config);
  EXPECT_GT(fast.sypd, 0.8 * single);
  EXPECT_FALSE(fast.wan_bound);
}

TEST(Federation, SlowLinkIsWanBound) {
  ScalingModel base;
  FederationModel federation(base);
  FederationConfig config = federation_case();
  config.wan.bandwidth_gbs = 0.01;  // 10 MB/s transcontinental trickle
  const FederationPrediction slow = federation.predict(config);
  EXPECT_TRUE(slow.wan_bound);
  EXPECT_LT(slow.sypd, 0.5 * federation.single_machine_sypd(config));
}

TEST(Federation, ThroughputMonotoneInBandwidth) {
  ScalingModel base;
  FederationModel federation(base);
  FederationConfig config = federation_case();
  double prev = 0.0;
  for (double gbs : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    config.wan.bandwidth_gbs = gbs;
    const double sypd = federation.predict(config).sypd;
    EXPECT_GE(sypd, prev);
    prev = sypd;
  }
}

TEST(Federation, BreakevenBandwidthIsFiniteAndConsistent) {
  ScalingModel base;
  FederationModel federation(base);
  FederationConfig config = federation_case();
  config.wan.latency_seconds = 5e-4;  // dedicated fiber, ~100 km
  const double breakeven = federation.breakeven_bandwidth_gbs(config, 0.9);
  ASSERT_GT(breakeven, 0.0);
  // At the break-even bandwidth the prediction indeed reaches the target.
  config.wan.bandwidth_gbs = breakeven;
  EXPECT_GE(federation.predict(config).sypd,
            0.9 * federation.single_machine_sypd(config) * 0.999);
  // Just below it, it does not.
  config.wan.bandwidth_gbs = breakeven * 0.5;
  EXPECT_LT(federation.predict(config).sypd,
            0.9 * federation.single_machine_sypd(config));
}

TEST(Federation, HighLatencyAloneCanPreventBreakeven) {
  ScalingModel base;
  FederationModel federation(base);
  FederationConfig config = federation_case();
  config.wan.latency_seconds = 10.0;  // absurd: 396 events/day x 20 s RTT
  EXPECT_EQ(federation.breakeven_bandwidth_gbs(config, 0.95), 0.0);
}

TEST(Measure, LocalCostsPositiveAndSane) {
  const LocalKernelCosts costs = measure_local_costs();
  EXPECT_GT(costs.atm_dynamics_ns_per_cell, 1.0);
  EXPECT_LT(costs.atm_dynamics_ns_per_cell, 1e6);
  EXPECT_GT(costs.atm_tracer_ns_per_cell_level, 0.1);
  EXPECT_GT(costs.atm_physics_ns_per_column, 1.0);
  EXPECT_GT(costs.ocn_barotropic_ns_per_point, 0.1);
}

}  // namespace
