// Tests for the parallel I/O subsystem (§5.2.5): subfile v2 record round
// trips, whole-record checksum verification, the group-scaled checkpoint
// codec, the async double-buffered checkpoint writer, the atomic manifest
// commit protocol, and a fault-injection suite asserting that every
// corruption mode throws symmetrically on all ranks (no deadlock).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "harness.hpp"
#include "io/checkpoint.hpp"
#include "io/subfile.hpp"
#include "par/comm.hpp"
#include "precision/group_scaled.hpp"

namespace {

using namespace ap3;
using io::FieldData;
using io::SubfileConfig;
using TempDir = ap3::testing::TempDir;

FieldData make_local(int rank, int npoints) {
  FieldData data;
  for (int k = 0; k < npoints; ++k) {
    data.ids.push_back(1000 * rank + k);
    data.values.push_back(rank + 0.001 * k);
  }
  return data;
}

/// Values with full fp64 mantissas (not fp32-representable).
FieldData make_irrational_local(int rank, int npoints) {
  FieldData data;
  for (int k = 0; k < npoints; ++k) {
    data.ids.push_back(static_cast<std::int64_t>(k));
    data.values.push_back((rank + 1) * 3.14159265358979311600 * (k + 1) /
                          (k + 7));
  }
  return data;
}

void flip_byte(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(offset);
  f.write(&byte, 1);
}

void truncate_to(const std::string& path, std::size_t keep) {
  std::filesystem::resize_file(path, keep);
}

TEST(Io, ChecksumDetectsChange) {
  const std::vector<char> a = {'a', 'b', 'c', 'd'};
  const std::vector<char> b = {'a', 'b', 'c', 'e'};
  EXPECT_NE(io::checksum({a.data(), a.size()}),
            io::checksum({b.data(), b.size()}));
  EXPECT_EQ(io::checksum({a.data(), a.size()}),
            io::checksum({a.data(), a.size()}));
}

// The floor group map must partition ranks into contiguous non-empty groups
// and the closed-form aggregator must name each group's lowest rank — for
// every split, including uneven ones (the v1 ceiling formula was dead code;
// this pins the live one).
TEST(Io, GroupMapPartitionsAndAggregatorAgrees) {
  const int cases[][2] = {{5, 2}, {6, 4}, {7, 3}, {7, 7}, {8, 5},
                          {9, 4}, {3, 1}, {12, 5}, {13, 13}};
  for (const auto& c : cases) {
    const int size = c[0], nsub = c[1];
    int prev_group = -1;
    std::vector<int> first_rank(static_cast<std::size_t>(nsub), -1);
    for (int r = 0; r < size; ++r) {
      const int g = io::subfile_group(r, size, nsub);
      ASSERT_GE(g, 0);
      ASSERT_LT(g, nsub);
      ASSERT_GE(g, prev_group) << "group map must be monotone";
      prev_group = g;
      if (first_rank[static_cast<std::size_t>(g)] < 0)
        first_rank[static_cast<std::size_t>(g)] = r;
    }
    for (int g = 0; g < nsub; ++g) {
      ASSERT_GE(first_rank[static_cast<std::size_t>(g)], 0)
          << "empty group " << g << " for size=" << size << " nsub=" << nsub;
      EXPECT_EQ(io::subfile_aggregator(g, size, nsub),
                first_rank[static_cast<std::size_t>(g)])
          << "size=" << size << " nsub=" << nsub;
    }
  }
}

// The aggregator formula must also agree with what the communicator split
// actually elects as group rank 0 (that is who writes the file).
TEST(Io, AggregatorIsGroupCommRankZero) {
  par::run(7, [&](par::Comm& comm) {
    for (int nsub = 1; nsub <= comm.size(); ++nsub) {
      const int group = io::subfile_group(comm.rank(), comm.size(), nsub);
      par::Comm group_comm = comm.split(group, comm.rank());
      const bool is_root = group_comm.rank() == 0;
      const bool is_agg =
          comm.rank() == io::subfile_aggregator(group, comm.size(), nsub);
      EXPECT_EQ(is_root, is_agg) << "rank " << comm.rank() << " nsub " << nsub;
      comm.barrier();
    }
  });
}

TEST(Io, SubfileRoundTripMultipleGroups) {
  TempDir tmp;
  const std::string base = tmp.file("a");
  par::run(6, [&](par::Comm& comm) {
    SubfileConfig config{base, 3};
    const FieldData mine = make_local(comm.rank(), 5 + comm.rank());
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    EXPECT_EQ(back.ids, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
}

TEST(Io, SubfileCountEqualsConfiguredGroups) {
  TempDir tmp;
  const std::string base = tmp.file("b");
  par::run(8, [&](par::Comm& comm) {
    SubfileConfig config{base, 4};
    io::write_subfiles(comm, config, make_local(comm.rank(), 3));
    comm.barrier();
  });
  int found = 0;
  for (int k = 0; k < 8; ++k)
    if (std::filesystem::exists(base + "." + std::to_string(k) + ".bin"))
      ++found;
  EXPECT_EQ(found, 4);
}

TEST(Io, OneSubfilePerRankDegenerateCase) {
  TempDir tmp;
  const std::string base = tmp.file("c");
  par::run(4, [&](par::Comm& comm) {
    SubfileConfig config{base, 4};
    const FieldData mine = make_local(comm.rank(), 7);
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
}

TEST(Io, SingleFileBaselineRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.file("single.bin");
  par::run(4, [&](par::Comm& comm) {
    const FieldData mine = make_local(comm.rank(), 4);
    io::write_single(comm, path, mine);
    comm.barrier();
    const FieldData back = io::read_single(comm, path, mine.ids);
    EXPECT_EQ(back.ids, mine.ids);
    EXPECT_EQ(back.values, mine.values);
    comm.barrier();
  });
}

// The v2 checksum covers the whole record. Flip one byte in EVERY region —
// header, counts, id runs, payload — and each must be rejected (v1 only
// covered the value payload, so corrupt counts/ids passed validation).
TEST(Io, CorruptionAnywhereInRecordFailsChecksum) {
  // v2 offsets: magic 8 | version 4 | codec 4 | nranks 8 -> counts at 24,
  // one count (8) -> nruns at 32, one run (16) -> payload at 56.
  const std::streamoff kCountsAt = 24;
  const std::streamoff kRunsAt = 32 + 8;
  const std::streamoff kPayloadAt = 32 + 8 + 16 + 3 * 8;
  for (const std::streamoff offset : {kCountsAt, kRunsAt, kPayloadAt}) {
    TempDir tmp;
    const std::string path = tmp.file("corrupt.bin");
    par::run(1, [&](par::Comm& comm) {
      io::write_single(comm, path, make_local(0, 10));
    });
    flip_byte(path, offset);
    par::run(1, [&](par::Comm& comm) {
      const FieldData mine = make_local(0, 10);
      EXPECT_THROW(io::read_single(comm, path, mine.ids), ap3::Error)
          << "corruption at offset " << offset << " not caught";
    });
  }
}

// A disk-full-style truncation (the write_blob bug: short writes used to
// "succeed") must be rejected on read — on every rank of the group.
TEST(Io, TruncatedSubfileThrowsOnAllRanks) {
  TempDir tmp;
  const std::string base = tmp.file("trunc");
  par::run(4, [&](par::Comm& comm) {
    SubfileConfig config{base, 1};
    io::write_subfiles(comm, config, make_local(comm.rank(), 6));
  });
  const std::string path = base + ".0.bin";
  const auto full = std::filesystem::file_size(path);
  truncate_to(path, static_cast<std::size_t>(full) / 2);
  par::run(4, [&](par::Comm& comm) {
    SubfileConfig config{base, 1};
    const FieldData mine = make_local(comm.rank(), 6);
    EXPECT_THROW(io::read_subfiles(comm, config, mine.ids), ap3::Error);
    comm.barrier();
  });
}

// Pre-v2 blobs started with a raw rank count — no magic. They must fail
// fast with a format message, not a confusing checksum mismatch.
TEST(Io, PreV2RecordFailsFastWithFormatError) {
  TempDir tmp;
  const std::string path = tmp.file("old.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::int64_t nranks = 1;
    out.write(reinterpret_cast<const char*>(&nranks), sizeof(nranks));
    const std::vector<double> junk(16, 1.25);
    out.write(reinterpret_cast<const char*>(junk.data()),
              static_cast<std::streamsize>(junk.size() * sizeof(double)));
  }
  par::run(1, [&](par::Comm& comm) {
    try {
      io::read_single(comm, path, {0});
      FAIL() << "pre-v2 record accepted";
    } catch (const ap3::Error& e) {
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
          << e.what();
    }
  });
}

TEST(Io, MismatchedDecompositionThrows) {
  TempDir tmp;
  const std::string path = tmp.file("mismatch.bin");
  par::run(2, [&](par::Comm& comm) {
    const FieldData mine = make_local(comm.rank(), 3);
    io::write_single(comm, path, mine);
    comm.barrier();
    // Ask for different ids than were written.
    std::vector<std::int64_t> wrong = {999, 998, 997};
    EXPECT_THROW(io::read_single(comm, path, wrong), ap3::Error);
    comm.barrier();
  });
}

TEST(Io, InvalidSubfileCountThrows) {
  par::run(2, [&](par::Comm& comm) {
    SubfileConfig config{"/tmp/ap3_io_test_bad", 5};  // more files than ranks
    EXPECT_THROW(io::write_subfiles(comm, config, make_local(comm.rank(), 2)),
                 ap3::Error);
  });
}

// ---- group-scaled codec ----------------------------------------------------

TEST(Io, GroupScaledRoundTripWithinUlpBound) {
  TempDir tmp;
  const std::string base = tmp.file("gs");
  par::run(2, [&](par::Comm& comm) {
    SubfileConfig config{base, 1};
    config.codec.codec = io::Codec::kGroupScaled;
    config.codec.group_size = 8;
    const FieldData mine = make_irrational_local(comm.rank(), 100);
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    std::uint64_t max_ulp = 0;
    for (std::size_t i = 0; i < mine.values.size(); ++i)
      max_ulp = std::max(
          max_ulp, precision::ulp_distance(back.values[i], mine.values[i]));
    EXPECT_GT(max_ulp, 0u) << "fp32 storage of fp64 data should be lossy";
    EXPECT_LE(max_ulp, config.codec.ulp_bound);
    comm.barrier();
  });
}

// Power-of-two scales make fp32-representable data round-trip bit-exactly.
TEST(Io, GroupScaledExactForFp32RepresentableValues) {
  TempDir tmp;
  const std::string base = tmp.file("gsf");
  par::run(2, [&](par::Comm& comm) {
    SubfileConfig config{base, 2};
    config.codec.codec = io::Codec::kGroupScaled;
    FieldData mine;
    for (int k = 0; k < 64; ++k) {
      mine.ids.push_back(k);
      mine.values.push_back(
          static_cast<double>(static_cast<float>(comm.rank() + 0.03125f * k)));
    }
    io::write_subfiles(comm, config, mine);
    comm.barrier();
    const FieldData back = io::read_subfiles(comm, config, mine.ids);
    EXPECT_EQ(back.values, mine.values);  // bit-exact
    comm.barrier();
  });
}

// An impossible bound must hard-fail the WRITE (where the fp64 reference
// still exists), not silently corrupt the restore.
TEST(Io, GroupScaledUlpBoundHardFailsAtEncode) {
  TempDir tmp;
  const std::string base = tmp.file("gs0");
  par::run(1, [&](par::Comm& comm) {
    SubfileConfig config{base, 1};
    config.codec.codec = io::Codec::kGroupScaled;
    config.codec.ulp_bound = 0;  // demands losslessness the codec cannot give
    const FieldData mine = make_irrational_local(comm.rank(), 16);
    EXPECT_THROW(io::write_subfiles(comm, config, mine), ap3::Error);
  });
}

// Group-scaled records must actually be about half the fp64 size at whole-
// file granularity (ids are run-length encoded, so the payload dominates).
TEST(Io, GroupScaledHalvesRecordBytes) {
  TempDir tmp;
  par::run(1, [&](par::Comm& comm) {
    const FieldData mine = make_irrational_local(0, 4096);
    SubfileConfig fp64{tmp.file("w64"), 1};
    SubfileConfig gs{tmp.file("wgs"), 1};
    gs.codec.codec = io::Codec::kGroupScaled;
    gs.codec.group_size = 32;
    const auto bytes_fp64 = io::write_subfiles(comm, fp64, mine);
    const auto bytes_gs = io::write_subfiles(comm, gs, mine);
    const double ratio =
        static_cast<double>(bytes_fp64) / static_cast<double>(bytes_gs);
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.2);
  });
}

// ---- checkpoint writer: async mode, atomic commit, fault injection ---------

io::CheckpointOptions two_subfile_options(bool async) {
  io::CheckpointOptions options;
  options.num_subfiles = 2;
  options.async = async;
  return options;
}

void write_snapshot(par::Comm& comm, const std::string& dir, bool async,
                    io::CodecSpec codec = {}) {
  io::CheckpointOptions options = two_subfile_options(async);
  options.codec = codec;
  io::CheckpointWriter writer(comm, dir, options);
  writer.add_section("alpha", io::local_field(
                                  make_irrational_local(comm.rank(), 40)
                                      .values));
  writer.add_section("beta", make_local(comm.rank(), 7));
  writer.set_scalar("clock.steps", 42.0);
  writer.finalize();
}

// The async writer must produce byte-identical files to the sync writer —
// same record format, same checksum, same manifest inventory.
TEST(IoCheckpoint, AsyncWriterMatchesSyncByteForByte) {
  TempDir tmp;
  const std::string sync_dir = tmp.file("sync");
  const std::string async_dir = tmp.file("async");
  par::run(4, [&](par::Comm& comm) {
    write_snapshot(comm, sync_dir, /*async=*/false);
    write_snapshot(comm, async_dir, /*async=*/true);
    comm.barrier();
  });
  for (const char* name : {"alpha.0.bin", "alpha.1.bin", "beta.0.bin",
                           "beta.1.bin"}) {
    std::ifstream a(sync_dir + "/" + name, std::ios::binary);
    std::ifstream b(async_dir + "/" + name, std::ios::binary);
    ASSERT_TRUE(a && b) << name;
    const std::string sa((std::istreambuf_iterator<char>(a)),
                         std::istreambuf_iterator<char>());
    const std::string sb((std::istreambuf_iterator<char>(b)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(sa, sb) << name;
  }
}

// Double-buffering: the async writer snapshots section data at add_section
// time; mutating the caller's buffers afterwards must not leak into the
// files written later by the background lane.
TEST(IoCheckpoint, AsyncWriterSnapshotsDataAtAddTime) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  par::run(2, [&](par::Comm& comm) {
    FieldData mine = make_local(comm.rank(), 50);
    const FieldData original = mine;
    {
      io::CheckpointWriter writer(comm, dir, two_subfile_options(true));
      writer.add_section("alpha", mine);
      for (double& v : mine.values) v = -1e9;  // mutate after the gather
      writer.finalize();
    }
    comm.barrier();
    io::CheckpointReader reader(comm, dir);
    const FieldData back = reader.read_section("alpha", original.ids);
    EXPECT_EQ(back.values, original.values);
    comm.barrier();
  });
}

// A deferred async write failure (here: a ULP bound the codec cannot meet)
// must surface at the collective fence on EVERY rank, not just the
// aggregator that ran the task.
TEST(IoCheckpoint, AsyncWriteFailureThrowsOnAllRanksAtWait) {
  TempDir tmp;
  const std::string dir = tmp.file("fail");
  par::run(4, [&](par::Comm& comm) {
    io::CheckpointOptions options = two_subfile_options(true);
    io::CheckpointWriter writer(comm, dir, options);
    io::CodecSpec impossible;
    impossible.codec = io::Codec::kGroupScaled;
    impossible.ulp_bound = 0;
    writer.add_section("alpha",
                       io::local_field(
                           make_irrational_local(comm.rank(), 30).values),
                       impossible);
    EXPECT_THROW(writer.wait(), ap3::Error);  // all 4 ranks, no deadlock
    comm.barrier();
  });
}

// Same deferral contract in sync mode: the error surfaces at finalize() on
// every rank (add_section must not throw on the aggregator alone).
TEST(IoCheckpoint, SyncWriteFailureThrowsOnAllRanksAtFinalize) {
  TempDir tmp;
  const std::string dir = tmp.file("fails");
  par::run(4, [&](par::Comm& comm) {
    io::CodecSpec impossible;
    impossible.codec = io::Codec::kGroupScaled;
    impossible.ulp_bound = 0;
    io::CheckpointWriter writer(comm, dir, two_subfile_options(false));
    writer.add_section("alpha",
                       io::local_field(
                           make_irrational_local(comm.rank(), 30).values),
                       impossible);
    EXPECT_THROW(writer.finalize(), ap3::Error);
    comm.barrier();
  });
}

// Codec policy is per section and recorded in the manifest.
TEST(IoCheckpoint, PerSectionCodecRecordedInManifest) {
  TempDir tmp;
  const std::string dir = tmp.file("mixed");
  par::run(2, [&](par::Comm& comm) {
    io::CheckpointWriter writer(comm, dir, two_subfile_options(false));
    io::CodecSpec gs;
    gs.codec = io::Codec::kGroupScaled;
    const FieldData mine = make_irrational_local(comm.rank(), 20);
    writer.add_section("exact", io::local_field(mine.values));
    writer.add_section("lossy", io::local_field(mine.values), gs);
    writer.finalize();
    comm.barrier();
    io::CheckpointReader reader(comm, dir);
    EXPECT_EQ(reader.section_codec("exact"), io::Codec::kFp64);
    EXPECT_EQ(reader.section_codec("lossy"), io::Codec::kGroupScaled);
    const FieldData exact =
        reader.read_section("exact", io::local_field(mine.values).ids);
    EXPECT_EQ(exact.values, mine.values);
    comm.barrier();
  });
}

// Swapping two sections' subfiles must be caught: the manifest's codec and
// the record's stored codec disagree.
TEST(IoCheckpoint, SubfileCodecMustMatchManifest) {
  TempDir tmp;
  const std::string dir = tmp.file("swap");
  par::run(1, [&](par::Comm& comm) {
    io::CheckpointOptions options;
    io::CheckpointWriter writer(comm, dir, options);
    io::CodecSpec gs;
    gs.codec = io::Codec::kGroupScaled;
    const FieldData mine = make_irrational_local(0, 24);
    writer.add_section("exact", io::local_field(mine.values));
    writer.add_section("lossy", io::local_field(mine.values), gs);
    writer.finalize();
  });
  std::filesystem::rename(dir + "/exact.0.bin", dir + "/swap.tmp");
  std::filesystem::rename(dir + "/lossy.0.bin", dir + "/exact.0.bin");
  std::filesystem::rename(dir + "/swap.tmp", dir + "/lossy.0.bin");
  par::run(1, [&](par::Comm& comm) {
    io::CheckpointReader reader(comm, dir);
    const FieldData tmpl = io::local_field(
        make_irrational_local(0, 24).values);
    EXPECT_THROW(reader.read_section("exact", tmpl.ids), ap3::Error);
    EXPECT_THROW(reader.read_section("lossy", tmpl.ids), ap3::Error);
  });
}

// ---- fault-injection suite: every corruption throws on every rank ----------

struct FaultCase {
  const char* name;
  void (*corrupt)(const std::string& dir);
};

TEST(IoFault, CorruptionThrowsSymmetricallyOnAllRanks) {
  const FaultCase cases[] = {
      {"bit-flip subfile payload",
       [](const std::string& dir) { flip_byte(dir + "/alpha.1.bin", 70); }},
      {"bit-flip manifest byte",
       [](const std::string& dir) { flip_byte(dir + "/MANIFEST.bin", 20); }},
      {"drop a section file",
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/beta.0.bin");
       }},
      {"truncate a subfile",
       [](const std::string& dir) {
         truncate_to(dir + "/alpha.0.bin", 33);
       }},
  };
  for (const FaultCase& fault : cases) {
    TempDir tmp;
    const std::string dir = tmp.file("snap");
    par::run(4, [&](par::Comm& comm) {
      write_snapshot(comm, dir, /*async=*/false);
    });
    fault.corrupt(dir);
    par::run(4, [&](par::Comm& comm) {
      // Either the manifest is rejected at construction or the section read
      // fails — on EVERY rank. Completing par::run proves no deadlock.
      try {
        io::CheckpointReader reader(comm, dir);
        const FieldData alpha_tmpl = io::local_field(
            make_irrational_local(comm.rank(), 40).values);
        const FieldData beta_tmpl = make_local(comm.rank(), 7);
        reader.read_section("alpha", alpha_tmpl.ids);
        reader.read_section("beta", beta_tmpl.ids);
        ADD_FAILURE() << fault.name << ": rank " << comm.rank()
                      << " accepted corrupt snapshot";
      } catch (const ap3::Error&) {
        // expected, on all ranks
      }
      comm.barrier();
    });
  }
}

TEST(IoFault, WrongSizeCommThrowsOnAllRanks) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  par::run(4, [&](par::Comm& comm) {
    write_snapshot(comm, dir, /*async=*/false);
  });
  par::run(3, [&](par::Comm& comm) {
    EXPECT_THROW(io::CheckpointReader(comm, dir), ap3::Error);
    comm.barrier();
  });
}

// ---- atomic commit protocol ------------------------------------------------

// Window 1: re-checkpointing into a reused directory. The old manifest must
// disappear BEFORE any section is rewritten, so a crash mid-rewrite reads
// as "no snapshot" — never as the old manifest vouching for torn sections.
TEST(IoCommit, RewriteInvalidatesOldManifestBeforeSections) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  par::run(2, [&](par::Comm& comm) {
    write_snapshot(comm, dir, /*async=*/false);
    comm.barrier();
    EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.bin"));
    comm.barrier();  // keep the check ahead of the next writer's invalidation
    {
      // Simulated crash: a second writer rewrites one section, then dies
      // before finalize.
      io::CheckpointWriter writer(comm, dir, two_subfile_options(false));
      EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.bin"))
          << "old manifest still claims completeness during rewrite";
      writer.add_section("alpha",
                         io::local_field(std::vector<double>(40, 7.0)));
    }
    comm.barrier();
    EXPECT_THROW(io::CheckpointReader(comm, dir), ap3::Error);
    comm.barrier();
  });
}

// Window 2: crash between staging MANIFEST.bin.tmp and the rename. Readers
// never look at the tmp; the next writer cleans it up.
TEST(IoCommit, HalfStagedManifestIsInvisibleAndCleanedUp) {
  TempDir tmp;
  const std::string dir = tmp.file("snap");
  par::run(2, [&](par::Comm& comm) {
    write_snapshot(comm, dir, /*async=*/false);
  });
  // Simulate the crash window: manifest staged but never renamed.
  std::filesystem::rename(dir + "/MANIFEST.bin", dir + "/MANIFEST.bin.tmp");
  par::run(2, [&](par::Comm& comm) {
    EXPECT_THROW(io::CheckpointReader(comm, dir), ap3::Error);
    comm.barrier();
    write_snapshot(comm, dir, /*async=*/false);  // recovery path
    comm.barrier();
    io::CheckpointReader reader(comm, dir);  // must succeed now
    EXPECT_EQ(reader.scalar("clock.steps"), 42.0);
    comm.barrier();
  });
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.bin.tmp"))
      << "stale staging file survived a successful commit";
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.bin"));
}

// ---- bytes accounting ------------------------------------------------------

// Summed across ranks, bytes_written() must equal what is actually on disk:
// each subfile counted once (by its aggregator) and the manifest counted
// once (by global rank 0).
TEST(IoCheckpoint, BytesWrittenMatchesDisk) {
  for (const bool async : {false, true}) {
    TempDir tmp;
    const std::string dir = tmp.file("snap");
    par::run(4, [&](par::Comm& comm) {
      io::CheckpointWriter writer(comm, dir, two_subfile_options(async));
      writer.add_section("alpha",
                         io::local_field(
                             make_irrational_local(comm.rank(), 40).values));
      writer.add_section("beta", make_local(comm.rank(), 7));
      writer.finalize();
      const auto mine = static_cast<std::uint64_t>(writer.bytes_written());
      const auto total =
          comm.allreduce_value(mine, par::ReduceOp::kSum);
      if (comm.rank() == 0) {
        std::uint64_t on_disk = 0;
        for (const auto& entry : std::filesystem::directory_iterator(dir))
          on_disk += static_cast<std::uint64_t>(entry.file_size());
        EXPECT_EQ(total, on_disk) << (async ? "async" : "sync");
      }
      comm.barrier();
    });
  }
}

}  // namespace
