// Sparse regridding matrices and their distributed application.
//
// The coupler maps fields between the icosahedral atmosphere mesh and the
// tripolar ocean grid through sparse interpolation matrices (MCT's
// sMatAvMult). Weights here are k-nearest inverse-distance on the sphere —
// not the paper's conservative remap generator (offline tooling we don't
// reproduce) but the same runtime structure: distributed rows, gathered
// source halo, weighted accumulation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "grid/halo.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"

namespace ap3::mct {

struct MatrixEntry {
  std::int64_t dst = 0;
  std::int64_t src = 0;
  double weight = 0.0;
};

/// A point on the sphere for weight generation (radians).
struct GeoPoint {
  double lon = 0.0;
  double lat = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(std::vector<MatrixEntry> entries);

  const std::vector<MatrixEntry>& entries() const { return entries_; }
  std::size_t num_entries() const { return entries_.size(); }

  /// Bytes held by the weight table.
  std::size_t resident_bytes() const {
    return entries_.size() * sizeof(MatrixEntry);
  }

  /// Row sums (per dst id); an interpolation matrix should have sums ~ 1.
  double max_row_sum_deviation() const;

  /// k-nearest-neighbour inverse-distance weights from src points to dst
  /// points, rows normalized to 1. O(nd·ns) — intended for the mini-grids.
  static SparseMatrix inverse_distance(const std::vector<GeoPoint>& dst,
                                       const std::vector<GeoPoint>& src, int k);

  /// Serial reference apply: dst[i] = sum_j w_ij src[j].
  std::vector<double> apply_serial(std::span<const double> src,
                                   std::size_t dst_size) const;

 private:
  std::vector<MatrixEntry> entries_;  // sorted by (dst, src)
};

/// Distributed matrix application bound to two decompositions: each rank
/// applies the rows of its destination points, gathering remote source
/// values through a one-time halo plan.
class RegridOp {
 public:
  RegridOp(const par::Comm& comm, const SparseMatrix& matrix,
           const GlobalSegMap& src_map, const GlobalSegMap& dst_map);

  /// `src_local`: this rank's source values in src_map local order.
  /// Returns this rank's destination values in dst_map local order.
  std::vector<double> apply(std::span<const double> src_local) const;

  /// Apply to a whole AttrVect field by field.
  void apply(const AttrVect& src, AttrVect& dst) const;

 private:
  struct LocalTerm {
    std::size_t dst_local;
    std::size_t src_slot;  ///< index into [owned values | ghost values]
    double weight;
  };
  const par::Comm& comm_;
  std::size_t num_src_local_ = 0;
  std::size_t num_dst_local_ = 0;
  std::vector<LocalTerm> terms_;
  std::unique_ptr<grid::GraphHalo> halo_;
};

}  // namespace ap3::mct
