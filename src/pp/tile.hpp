// Tile profiling for multi-dimensional parallel iterations.
//
// §5.3: "Kokkos offers finer-grained tile profiling for multi-dimensional
// parallel iterations, enhancing algorithmic flexibility." The profiler
// records per-(kernel, tile-shape) timings during a sweep and reports the
// fastest shape, which the ocean kernels then adopt.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ap3::pp {

struct TileShape {
  std::size_t tile0 = 0;
  std::size_t tile1 = 0;
  bool operator<(const TileShape& o) const {
    return tile0 != o.tile0 ? tile0 < o.tile0 : tile1 < o.tile1;
  }
  bool operator==(const TileShape& o) const {
    return tile0 == o.tile0 && tile1 == o.tile1;
  }
};

struct TileRecord {
  TileShape shape;
  double seconds = 0.0;
  int samples = 0;
};

class TileProfiler {
 public:
  void record(const std::string& kernel, TileShape shape, double seconds);

  /// Best (lowest mean time) recorded shape for `kernel`; throws if none.
  TileShape best(const std::string& kernel) const;

  /// All records for a kernel, sorted by mean time ascending.
  std::vector<TileRecord> records(const std::string& kernel) const;

  /// Times fn(shape) for each candidate, records, and returns the best shape.
  template <typename RunFn>
  TileShape sweep(const std::string& kernel,
                  const std::vector<TileShape>& candidates, RunFn&& run);

  void clear() { data_.clear(); }

  static TileProfiler& global();

 private:
  std::map<std::string, std::map<TileShape, TileRecord>> data_;
};

}  // namespace ap3::pp

#include <chrono>

namespace ap3::pp {

template <typename RunFn>
TileShape TileProfiler::sweep(const std::string& kernel,
                              const std::vector<TileShape>& candidates,
                              RunFn&& run) {
  for (const TileShape& shape : candidates) {
    const auto start = std::chrono::steady_clock::now();
    run(shape);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    record(kernel, shape, secs);
  }
  return best(kernel);
}

}  // namespace ap3::pp
