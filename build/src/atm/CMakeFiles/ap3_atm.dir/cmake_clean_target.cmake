file(REMOVE_RECURSE
  "libap3_atm.a"
)
