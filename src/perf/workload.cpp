#include "perf/workload.hpp"

#include "ai/models.hpp"
#include "grid/icosahedral.hpp"
#include "grid/tripolar.hpp"

namespace ap3::perf {

AtmWorkload AtmWorkload::paper(double resolution_km, bool ai_physics) {
  AtmWorkload w;
  w.resolution_km = resolution_km;
  w.cells = grid::IcosaCounts::for_grist_label_km(resolution_km).cells;
  w.ai_physics = ai_physics;
  // Tensor flops of the actual paper-scale suite (≈5e5-parameter CNN + MLP).
  static const double ai_flops = [] {
    const ai::SuiteConfig config = ai::SuiteConfig::paper_scale();
    return ai::TendencyCnn(config).flops_per_column() +
           ai::RadiationMlp(config).flops_per_column();
  }();
  w.ai_physics_flops = ai_flops;
  return w;
}

OcnWorkload OcnWorkload::paper(double resolution_km, bool exclude) {
  OcnWorkload w;
  w.resolution_km = resolution_km;
  const grid::TripolarConfig config =
      grid::TripolarConfig::for_resolution_km(resolution_km);
  w.nx = config.nx;
  w.ny = config.ny;
  w.nz = config.nz;
  w.exclude_non_ocean = exclude;
  return w;
}

}  // namespace ap3::perf
