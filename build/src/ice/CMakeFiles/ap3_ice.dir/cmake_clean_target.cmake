file(REMOVE_RECURSE
  "libap3_ice.a"
)
