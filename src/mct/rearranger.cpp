#include "mct/rearranger.hpp"

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::mct {

namespace {
constexpr int kTagRearrange = 9300;

void check_fields(const AttrVect& src, const AttrVect& dst) {
  AP3_REQUIRE_MSG(src.field_names() == dst.field_names(),
                  "rearrange: AttrVect field sets differ");
}
}  // namespace

std::vector<double> Rearranger::pack_for_peer(
    const AttrVect& src, const std::vector<std::int64_t>& plan) const {
  // Payload layout: field-major — all field-0 values in wire order, then
  // field-1, ... Deterministic and identical for both strategies.
  std::vector<double> payload(plan.size() * src.num_fields());
  std::size_t pos = 0;
  for (std::size_t f = 0; f < src.num_fields(); ++f) {
    const auto field = src.field(f);
    for (std::int64_t idx : plan)
      payload[pos++] = field[static_cast<std::size_t>(idx)];
  }
  return payload;
}

void Rearranger::unpack_from_peer(AttrVect& dst,
                                  const std::vector<std::int64_t>& plan,
                                  std::span<const double> payload) const {
  AP3_REQUIRE(payload.size() == plan.size() * dst.num_fields());
  std::size_t pos = 0;
  for (std::size_t f = 0; f < dst.num_fields(); ++f) {
    auto field = dst.field(f);
    for (std::int64_t idx : plan)
      field[static_cast<std::size_t>(idx)] = payload[pos++];
  }
}

void Rearranger::rearrange(const AttrVect& src, AttrVect& dst,
                           RearrangeMethod method) const {
  check_fields(src, dst);
  if (method == RearrangeMethod::kAlltoallv) {
    rearrange_alltoallv(src, dst);
  } else {
    rearrange_p2p(src, dst);
  }
}

void Rearranger::rearrange_alltoallv(const AttrVect& src, AttrVect& dst) const {
  AP3_SPAN("mct:rearrange:alltoallv");
  // The original strategy: every rank participates in one big collective
  // even if it exchanges data with only a handful of peers.
  std::vector<double> send_data;
  std::vector<std::size_t> send_counts(static_cast<std::size_t>(comm_.size()),
                                       0);
  for (int peer = 0; peer < comm_.size(); ++peer) {
    const auto it = router_.send_plan().find(peer);
    if (it == router_.send_plan().end()) continue;
    const std::vector<double> payload = pack_for_peer(src, it->second);
    send_counts[static_cast<std::size_t>(peer)] = payload.size();
    send_data.insert(send_data.end(), payload.begin(), payload.end());
  }
  std::vector<std::size_t> recv_counts;
  const std::vector<double> recv_data =
      comm_.alltoallv(std::span<const double>(send_data),
                      std::span<const std::size_t>(send_counts), recv_counts);
  std::size_t offset = 0;
  for (int peer = 0; peer < comm_.size(); ++peer) {
    const std::size_t n = recv_counts[static_cast<std::size_t>(peer)];
    if (n == 0) continue;
    const auto it = router_.recv_plan().find(peer);
    AP3_REQUIRE_MSG(it != router_.recv_plan().end(),
                    "unexpected rearrange payload from rank " << peer);
    unpack_from_peer(dst, it->second,
                     {recv_data.data() + offset, n});
    offset += n;
  }
}

void Rearranger::rearrange_p2p(const AttrVect& src, AttrVect& dst) const {
  AP3_SPAN("mct:rearrange:p2p");
  // Optimized strategy: only actual peers communicate; sends are posted
  // non-blocking up front and unpacking overlaps with draining receives.
  // Under fault injection the transport's sequenced take/timeout/backoff
  // recovers dropped or reordered payloads transparently, so the rearranged
  // result is identical to a fault-free run (tests/test_properties.cpp).
  std::vector<std::vector<double>> payloads;
  std::vector<par::Request> sends;
  payloads.reserve(router_.send_plan().size());
  for (const auto& [peer, plan] : router_.send_plan()) {
    payloads.push_back(pack_for_peer(src, plan));
    sends.push_back(comm_.isend(std::span<const double>(payloads.back()), peer,
                                kTagRearrange));
  }
  for (const auto& [peer, plan] : router_.recv_plan()) {
    std::vector<double> payload(plan.size() * dst.num_fields());
    const std::size_t n =
        comm_.recv(std::span<double>(payload), peer, kTagRearrange);
    AP3_REQUIRE(n == payload.size());
    unpack_from_peer(dst, plan, payload);
  }
  par::wait_all(sends);
}

}  // namespace ap3::mct
