// Quickstart: build the fully coupled AP3ESM at toy resolution, run one
// simulated day of coupling windows, and print global diagnostics.
//
//   ./quickstart [nranks] [--trace out.json]
//
// Demonstrates the public API end to end: configuration, the coupled driver
// with its CPL7-style clock, and collective diagnostics. With --trace, the
// observability layer's Chrome-trace export (one timeline row per simulated
// rank; open in chrome://tracing or Perfetto) is written after the run,
// along with the getTiming-style SYPD report derived from the same spans.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coupler/driver.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"

int main(int argc, char** argv) {
  using namespace ap3;
  int nranks = 2;
  std::string trace_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--trace") == 0) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "error: --trace requires an output path\n"
                             "usage: quickstart [nranks] [--trace out.json]\n");
        return 2;
      }
      trace_path = argv[++a];
    } else {
      nranks = std::atoi(argv[a]);
      if (nranks <= 0) {
        std::fprintf(stderr, "error: invalid rank count '%s'\n"
                             "usage: quickstart [nranks] [--trace out.json]\n",
                     argv[a]);
        return 2;
      }
    }
  }

  cpl::CoupledConfig config;
  config.atm.mesh_n = 6;                                // 720 cells
  config.atm.nlev = 10;
  config.ocn.grid = grid::TripolarConfig{48, 36, 10};   // toy tripolar grid
  config.layout = cpl::Layout::kSequential;

  std::printf("AP3ESM quickstart: %d ranks, atm %zu cells x %d levels, "
              "ocn %dx%dx%d\n",
              nranks, static_cast<size_t>(20 * config.atm.mesh_n * config.atm.mesh_n),
              config.atm.nlev, config.ocn.grid.nx, config.ocn.grid.ny,
              config.ocn.grid.nz);

  par::run(nranks, [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, config);
    const double window = model.atm_window_seconds();
    const int windows_per_day =
        static_cast<int>(86400.0 / window) + 1;

    if (comm.rank() == 0)
      std::printf("coupling window %.0f s (%d windows ~= 1 day; ocean couples "
                  "every %d)\n\n  window   mean SST [K]   max current [m/s]   "
                  "ice frac   mean precip [kg/m2/s]\n",
                  window, windows_per_day, config.ocn_couple_ratio);

    for (int chunk = 0; chunk < 4; ++chunk) {
      model.run_windows(windows_per_day / 4);
      const double sst = model.global_mean_sst_k();
      const double current = model.global_max_surface_current();
      const double ice = model.global_ice_fraction();
      const double precip = model.global_mean_precip();
      if (comm.rank() == 0)
        std::printf("  %6lld   %10.3f   %17.4f   %8.4f   %.3e\n",
                    model.windows_run(), sst, current, ice, precip);
    }
    if (comm.rank() == 0)
      std::printf("\nquickstart finished: %lld atmosphere windows, %lld "
                  "atmosphere steps, %lld ocean baroclinic steps\n",
                  model.windows_run(),
                  model.has_atm() ? model.atm_model()->model_steps() : 0,
                  model.has_ocn() ? model.ocn_model()->baroclinic_steps() : 0);

    const cpl::TimingSummary timing = model.timing_summary();
    if (comm.rank() == 0) std::printf("\n%s", timing.to_string().c_str());
  });

  if (!trace_path.empty()) {
    try {
      obs::write_chrome_trace(trace_path);
    } catch (const std::exception& e) {
      // The run itself succeeded; don't abort over a bad trace path.
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("chrome trace (open in chrome://tracing): %s\n",
                trace_path.c_str());
  }
  return 0;
}
