// Fig. 2 — the state-of-the-art survey of high-resolution coupled models and
// the log-linear "SOTA dividing line" fit between CNRM (2019) and CESM
// (2024), the most favorable cases in the 1e8 and 1e9 grid-point ranges.
//
// Grid-point totals are estimates assembled from the cited configurations
// (atmosphere columns × levels + ocean points × levels); they reproduce the
// figure's placement, not archival metadata.
#pragma once

#include <string>
#include <vector>

namespace ap3::perf {

struct SotaPoint {
  std::string model;
  int year = 0;
  double total_grid_points = 0.0;
  double sypd = 0.0;
  bool is_ap3esm = false;
};

/// The survey points of Fig. 2 plus the AP3ESM configurations of this paper.
std::vector<SotaPoint> sota_survey();

/// log10(SYPD) = intercept + slope * log10(points).
struct LogLinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double sypd_at(double total_grid_points) const;
};

/// The dividing line: fit through CNRM (2019) and CESM (2024).
LogLinearFit fit_sota_line();

/// True if the point sits above the SOTA line (better than the state of the
/// art at its problem size).
bool beats_sota(const SotaPoint& point);

}  // namespace ap3::perf
