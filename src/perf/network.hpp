// Interconnect timing models for the two machines of §6.3.
//
// Sunway OceanLight: 256-node supernodes on leaf switches with a 16:3
// oversubscribed fat tree above them. ORISE: GPU nodes with PCIe-attached
// accelerators and a 25 GB/s network. These models supply the communication
// terms of the strong/weak-scaling predictions: halo exchanges (bandwidth +
// latency per neighbor message) and allreduces (log-tree latency), with
// inter-supernode traffic charged the oversubscribed bandwidth.
#pragma once

#include <cstddef>

namespace ap3::perf {

enum class MachineKind { kSunwayOceanLight, kOrise };

class NetworkModel {
 public:
  explicit NetworkModel(MachineKind kind);

  MachineKind kind() const { return kind_; }

  /// Point-to-point message time.
  double p2p_seconds(double bytes, bool same_supernode) const;

  /// One halo exchange: `neighbors` simultaneous messages of `bytes` each
  /// from one node. With many nodes most neighbors leave the supernode.
  double halo_seconds(double bytes, int neighbors, long long nodes) const;

  /// Allreduce of `bytes` across `nodes` (binary-tree model).
  double allreduce_seconds(double bytes, long long nodes) const;

  double latency_seconds() const { return latency_; }
  double intra_bandwidth_gbs() const { return intra_gbs_; }
  double inter_bandwidth_gbs() const { return inter_gbs_; }

 private:
  MachineKind kind_;
  double latency_;
  double intra_gbs_;
  double inter_gbs_;
};

}  // namespace ap3::perf
