// Regenerates Fig. 7: the Doksuri track/intensity comparison. The coupled
// mini-model forecast track is compared against the synthetic best track
// (the stand-in for the CMA analysis; see DESIGN.md substitutions), with
// the same diagnostics the figure carries: positions, intensity categories,
// and track errors over forecast time.
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/rng.hpp"
#include "coupler/driver.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct Fix {
  double hours, lon, lat, wind;
};

std::vector<Fix> best_track(int n, double hours_step) {
  std::vector<Fix> out;
  Rng rng(20230723);
  double lon = 133.0, lat = 17.0, wind = 38.0;
  for (int k = 0; k < n; ++k) {
    out.push_back({k * hours_step, lon, lat, wind});
    lon -= 0.55 * hours_step / 6.0 + 0.05 * rng.normal();
    lat += 0.38 * hours_step / 6.0 + 0.04 * rng.normal();
    wind += (k < n / 2 ? 2.0 : -1.5) * hours_step / 6.0;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Fig. 7 — Doksuri analog: forecast track vs reference track\n");
  std::printf("============================================================\n\n");

  static std::vector<Fix> forecast;
  static double hours_step = 6.0;
  par::run(2, [&](par::Comm& comm) {
    cpl::CoupledConfig config;
    config.atm.mesh_n = 10;
    config.atm.nlev = 8;
    config.atm.drag_per_second = 5e-7;
    config.ocn.grid = grid::TripolarConfig{96, 72, 8};
    cpl::CoupledModel model(comm, config);

    atm::VortexSpec spec;
    spec.lon_deg = 133.0;
    spec.lat_deg = 17.0;
    spec.radius_km = 350.0;
    spec.max_wind_ms = 50.0;
    spec.depression_m = 130.0;
    model.seed_typhoon(spec);
    if (model.has_atm()) {
      auto& dycore = model.atm().dycore();
      for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
        double u = 0.0, v = 0.0;
        dycore.wind_at(c, u, v);
        dycore.set_wind_at(c, u - 5.5, v + 1.2);
      }
    }

    hours_step = model.atm_window_seconds() / 3600.0;
    double lon = spec.lon_deg, lat = spec.lat_deg;
    for (int w = 0; w < 8; ++w) {
      const atm::VortexFix fix = model.track_typhoon(lon, lat, 700.0);
      if (fix.found) {
        lon = fix.lon_deg;
        lat = fix.lat_deg;
        if (comm.rank() == 0)
          forecast.push_back({w * hours_step, lon, lat, fix.max_wind_ms});
      }
      model.run_windows(1);
    }
  });

  const auto reference = best_track(static_cast<int>(forecast.size()),
                                    hours_step);
  std::printf("  t[h]   forecast lon/lat  wind cat |  best lon/lat     wind "
              "cat | err[km]\n");
  double mean_err = 0.0, early_err = 0.0;
  int early = 0;
  for (std::size_t k = 0; k < forecast.size(); ++k) {
    const Fix& f = forecast[k];
    const Fix& b = reference[k];
    const double err = atm::track_distance_km(f.lon, f.lat, b.lon, b.lat);
    mean_err += err;
    if (k < forecast.size() / 2) {
      early_err += err;
      ++early;
    }
    std::printf("  %4.0f   %6.2fE %5.2fN  %5.1f  C%d | %6.2fE %5.2fN  %5.1f "
                " C%d | %7.0f\n",
                f.hours, f.lon, f.lat, f.wind,
                atm::intensity_category(f.wind), b.lon, b.lat, b.wind,
                atm::intensity_category(b.wind), err);
  }
  if (!forecast.empty()) {
    mean_err /= static_cast<double>(forecast.size());
    std::printf("\n  mean track error %.0f km (first half: %.0f km)\n",
                mean_err, early ? early_err / early : 0.0);
  }
  std::printf("\npaper's qualitative claims: close agreement in the initial\n"
              "stage, qualitative consistency later, and a more intense storm\n"
              "than coarse reanalysis — at this toy resolution the early-stage\n"
              "agreement and the intensity evolution are the reproduced parts.\n");
  return 0;
}
