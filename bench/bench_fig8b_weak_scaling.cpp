// Regenerates Fig. 8b: weak scaling of the atmosphere (25/10/6/3 km on
// 683/2731/10922/43691 nodes) and the ocean (10/5/3/2 km on
// 2107/8212/18225/50035 nodes). The paper reports weak-scaling efficiencies
// of 87.85 % (atm, 17 M cores) and 96.57 % (ocn, 19.5 M cores).
#include <cstdio>
#include <vector>

#include "perf/scaling.hpp"

int main() {
  using namespace ap3::perf;
  ScalingModel model;

  std::printf("Fig. 8b — weak scaling (calibrated model)\n");
  std::printf("==========================================\n\n");

  {
    const ScalingCurve curve = model.fig8b_weak_atm();
    const std::vector<double> res = {25.0, 10.0, 6.0, 3.0};
    std::vector<double> points;
    for (double r : res) points.push_back(AtmWorkload::paper(r).total_points());
    std::printf("atmosphere:\n");
    std::printf("  res[km]    nodes       cores      points/node    model SYPD\n");
    for (std::size_t k = 0; k < curve.points.size(); ++k) {
      const CurvePoint& p = curve.points[k];
      std::printf("  %6.0f   %6lld  %10lld   %12.3g   %10.4f\n", res[k],
                  p.units, p.cores, points[k] / static_cast<double>(p.units),
                  p.sypd_model);
    }
    std::printf("  weak efficiency: model %.2f%%  (paper 87.85%%)\n\n",
                100.0 * ScalingModel::weak_efficiency(curve, points));
  }

  {
    const ScalingCurve curve = model.fig8b_weak_ocn();
    const std::vector<double> res = {10.0, 5.0, 3.0, 2.0};
    std::vector<double> points;
    for (double r : res)
      points.push_back(OcnWorkload::paper(r).computed_points());
    std::printf("ocean:\n");
    std::printf("  res[km]    nodes       cores      points/node    model SYPD\n");
    for (std::size_t k = 0; k < curve.points.size(); ++k) {
      const CurvePoint& p = curve.points[k];
      std::printf("  %6.0f   %6lld  %10lld   %12.3g   %10.4f\n", res[k],
                  p.units, p.cores, points[k] / static_cast<double>(p.units),
                  p.sypd_model);
    }
    std::printf("  weak efficiency: model %.2f%%  (paper 96.57%%)\n",
                100.0 * ScalingModel::weak_efficiency(curve, points));
  }
  return 0;
}
