// GPTL-style hierarchical wall-clock timers (§6.2 of the paper: wall-clock
// measurements come from GPTL timers in Coupler 7, max across ranks).
//
// Instrumentation itself lives in the unified observability layer (src/obs —
// RAII obs::Span / AP3_SPAN, counters, Chrome-trace export). This registry
// remains as the aggregation sink cpl::summarize_timing consumes: it is fed
// from span aggregates via obs::fill_registry -> absorb(). The old
// string-paired start()/stop() recording protocol (and its ScopedTimer) was
// deprecated in favor of AP3_SPAN and has been removed.
//
// Timer names nest through ':' separators ("cpl:run:atm"), which drives the
// report() indentation. Each simulated rank owns a TimerRegistry; the
// coupler's getTiming analog reduces the per-rank maxima, mirroring the
// paper's measurement mechanism.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ap3 {

/// One named accumulating timer.
struct TimerStats {
  std::string name;
  long long calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  double min_seconds = 0.0;
};

/// Registry of named timers. Not thread-safe by design: each simulated rank
/// (thread) owns its own registry, matching per-rank GPTL instances.
class TimerRegistry {
 public:
  /// Merge externally aggregated stats into this registry (the span-fed
  /// path; see obs::fill_registry).
  void absorb(const TimerStats& stats);

  /// Seconds accumulated in `name`; 0 if never started.
  double total(const std::string& name) const;
  long long calls(const std::string& name) const;

  /// All timers sorted by descending total time.
  std::vector<TimerStats> snapshot() const;

  /// Render an indented report (nesting inferred from ':' separators).
  std::string report() const;

  void reset();

  /// Process-wide registry for single-threaded tools.
  static TimerRegistry& global();

 private:
  struct Entry {
    TimerStats stats;
  };
  std::map<std::string, Entry> entries_;
};

/// Reduce per-rank timer totals the way getTiming does: the maximum across
/// ranks is what load-imbalanced components report.
TimerStats max_across_ranks(const std::vector<TimerStats>& per_rank);

}  // namespace ap3
