// Tests for the coupling toolkit: AttrVect semantics, GlobalSegMap
// construction/serialization, Router correctness and offline precompute
// (§5.2.4), both rearranger strategies (bitwise agreement), and distributed
// regridding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "base/rng.hpp"

#include "base/constants.hpp"
#include "harness.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "mct/router.hpp"
#include "mct/sparsematrix.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::mct;
using ap3::testing::block_ids;
using ap3::testing::cyclic_ids;
using ap3::testing::run_ranks;
using ap3::testing::TempDir;

// --- AttrVect ------------------------------------------------------------

TEST(AttrVect, FieldsZeroInitialized) {
  AttrVect av({"t", "u", "v"}, 10);
  EXPECT_EQ(av.num_fields(), 3u);
  EXPECT_EQ(av.num_points(), 10u);
  for (double v : av.field("u")) EXPECT_EQ(v, 0.0);
}

TEST(AttrVect, FieldAccessByNameAndIndex) {
  AttrVect av({"t", "q"}, 4);
  av.field("q")[2] = 5.0;
  EXPECT_EQ(av.field(1)[2], 5.0);
  EXPECT_EQ(av.at(1, 2), 5.0);
}

TEST(AttrVect, UnknownFieldThrows) {
  AttrVect av({"t"}, 4);
  EXPECT_THROW(av.field("nope"), ap3::Error);
}

TEST(AttrVect, DuplicateFieldThrows) {
  EXPECT_THROW(AttrVect({"t", "t"}, 4), ap3::Error);
}

TEST(AttrVect, SubsetKeepsValues) {
  AttrVect av({"t", "u", "unused"}, 3);
  av.field("t")[1] = 7.0;
  const AttrVect trimmed = av.subset({"t", "u"});
  EXPECT_EQ(trimmed.num_fields(), 2u);
  EXPECT_EQ(trimmed.field("t")[1], 7.0);
  EXPECT_FALSE(trimmed.has_field("unused"));
}

// --- GlobalSegMap -------------------------------------------------------------

TEST(GsMap, BuildFromContiguousBlocks) {
  run_ranks(4, [](par::Comm& comm) {
    // Rank r owns [100r, 100r+100).
    std::vector<std::int64_t> mine(100);
    std::iota(mine.begin(), mine.end(), 100 * comm.rank());
    const GlobalSegMap map = GlobalSegMap::build(comm, mine);
    EXPECT_EQ(map.gsize(), 400);
    EXPECT_EQ(map.segments().size(), 4u);  // run-compressed
    EXPECT_EQ(map.owner(250), 2);
    EXPECT_EQ(map.local_size(comm.rank()), 100);
    EXPECT_EQ(map.local_index(1, 142), 42);
  });
}

TEST(GsMap, StridedOwnershipCompressesToManySegments) {
  run_ranks(2, [](par::Comm& comm) {
    // Interleaved by blocks of 10.
    std::vector<std::int64_t> mine;
    for (std::int64_t block = comm.rank(); block < 10; block += 2)
      for (std::int64_t k = 0; k < 10; ++k) mine.push_back(block * 10 + k);
    const GlobalSegMap map = GlobalSegMap::build(comm, mine);
    EXPECT_EQ(map.gsize(), 100);
    EXPECT_EQ(map.segments().size(), 10u);
    EXPECT_EQ(map.owner(0), 0);
    EXPECT_EQ(map.owner(10), 1);
    EXPECT_EQ(map.owner(95), 1);
  });
}

TEST(GsMap, LocalIdsRoundTrip) {
  const GlobalSegMap map = GlobalSegMap::from_all({{0, 1, 2, 7, 8}, {3, 4, 5, 6}});
  const auto ids0 = map.local_ids(0);
  EXPECT_EQ(ids0, (std::vector<std::int64_t>{0, 1, 2, 7, 8}));
  EXPECT_EQ(map.local_index(0, 7), 3);
  EXPECT_EQ(map.local_index(1, 6), 3);
  EXPECT_FALSE(map.contains(9));
  EXPECT_THROW(map.owner(9), ap3::Error);
}

TEST(GsMap, SerializeDeserializeRoundTrip) {
  const GlobalSegMap map = GlobalSegMap::from_all({{0, 1, 5, 6}, {2, 3, 4}});
  const GlobalSegMap copy = GlobalSegMap::deserialize(map.serialize());
  EXPECT_TRUE(map == copy);
}

TEST(GsMap, SaveLoadRoundTrip) {
  const GlobalSegMap map = GlobalSegMap::from_all({{0, 1}, {2, 3}});
  const TempDir tmp;
  const std::string path = tmp.file("gsmap.bin");
  map.save(path);
  const GlobalSegMap loaded = GlobalSegMap::load(path);
  EXPECT_TRUE(map == loaded);
}

// --- Router ---------------------------------------------------------------------

TEST(Router, IdentityDecompositionIsSelfOnly) {
  const GlobalSegMap map = GlobalSegMap::from_all({{0, 1, 2}, {3, 4, 5}});
  const Router router = Router::build(0, map, map);
  ASSERT_EQ(router.send_plan().size(), 1u);
  EXPECT_EQ(router.send_plan().begin()->first, 0);  // sends to itself
  EXPECT_EQ(router.points_sent(), 3);
  EXPECT_EQ(router.points_received(), 3);
}

TEST(Router, TransposeDecomposition) {
  // Source: rank0 owns 0..5, rank1 owns 6..11.
  // Dest:   rank0 owns evens, rank1 owns odds.
  const GlobalSegMap src = GlobalSegMap::from_all({{0, 1, 2, 3, 4, 5},
                                                   {6, 7, 8, 9, 10, 11}});
  const GlobalSegMap dst = GlobalSegMap::from_all(
      {{0, 2, 4, 6, 8, 10}, {1, 3, 5, 7, 9, 11}});
  const Router r0 = Router::build(0, src, dst);
  // Rank 0 as source holds 0..5: evens (0,2,4) to pe0, odds (1,3,5) to pe1.
  EXPECT_EQ(r0.send_plan().at(0), (std::vector<std::int64_t>{0, 2, 4}));
  EXPECT_EQ(r0.send_plan().at(1), (std::vector<std::int64_t>{1, 3, 5}));
  // Rank 0 as dest receives evens: 0,2,4 from pe0; 6,8,10 from pe1.
  EXPECT_EQ(r0.recv_plan().at(0).size(), 3u);
  EXPECT_EQ(r0.recv_plan().at(1).size(), 3u);
  EXPECT_EQ(r0.points_sent(), 6);
  EXPECT_EQ(r0.points_received(), 6);
}

TEST(Router, PartialOverlapOnlyRoutesIntersection) {
  // Destination map covers only ids 2..3 of a 6-point source.
  const GlobalSegMap src = GlobalSegMap::from_all({{0, 1, 2}, {3, 4, 5}});
  const GlobalSegMap dst = GlobalSegMap::from_all({{2, 3}, {}});
  const Router r0 = Router::build(0, src, dst);
  EXPECT_EQ(r0.points_sent(), 1);      // only id 2
  EXPECT_EQ(r0.points_received(), 2);  // ids 2 and 3
  const Router r1 = Router::build(1, src, dst);
  EXPECT_EQ(r1.points_sent(), 1);  // only id 3
  EXPECT_EQ(r1.points_received(), 0);
}

TEST(Router, OfflinePrecomputeMatchesOnlineBuild) {
  // §5.2.4: routers generated offline must match the online construction.
  const GlobalSegMap src = GlobalSegMap::from_all({{0, 1, 2, 3}, {4, 5, 6, 7}});
  const GlobalSegMap dst = GlobalSegMap::from_all({{0, 2, 4, 6}, {1, 3, 5, 7}});
  const TempDir tmp;
  for (int rank = 0; rank < 2; ++rank) {
    const Router online = Router::build(rank, src, dst);
    const std::string path = tmp.file("router_" + std::to_string(rank));
    online.save(path);
    const Router offline = Router::load(path);
    EXPECT_TRUE(online == offline);
  }
}

// --- Rearranger -------------------------------------------------------------------

void run_rearrange_test(Strategy method) {
  run_ranks(4, [method](par::Comm& comm) {
    const std::int64_t n = 64;
    // Source: contiguous blocks; destination: round-robin by 4.
    std::vector<std::vector<std::int64_t>> src_ids(4), dst_ids(4);
    for (int r = 0; r < 4; ++r) {
      src_ids[static_cast<size_t>(r)] = block_ids(n, r, 4);
      dst_ids[static_cast<size_t>(r)] = cyclic_ids(n, r, 4);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);
    const Router router = Router::build(comm.rank(), src_map, dst_map);
    Rearranger rearranger(comm, router);

    AttrVect src({"t", "u"}, 16);
    const auto my_src = src_map.local_ids(comm.rank());
    for (size_t k = 0; k < my_src.size(); ++k) {
      src.field("t")[k] = static_cast<double>(my_src[k]);
      src.field("u")[k] = 1000.0 + static_cast<double>(my_src[k]);
    }
    AttrVect dst({"t", "u"}, 16);
    rearranger.rearrange(src, dst, method);

    const auto my_dst = dst_map.local_ids(comm.rank());
    for (size_t k = 0; k < my_dst.size(); ++k) {
      EXPECT_EQ(dst.field("t")[k], static_cast<double>(my_dst[k]));
      EXPECT_EQ(dst.field("u")[k], 1000.0 + static_cast<double>(my_dst[k]));
    }
  });
}

TEST(Rearranger, AlltoallvMovesEveryPoint) {
  run_rearrange_test(Strategy::kAlltoallv);
}

TEST(Rearranger, PointToPointMovesEveryPoint) {
  run_rearrange_test(Strategy::kSplitPhase);
}

TEST(Rearranger, StrategiesBitwiseIdentical) {
  run_ranks(3, [](par::Comm& comm) {
    const std::int64_t n = 30;
    std::vector<std::vector<std::int64_t>> src_ids(3), dst_ids(3);
    for (std::int64_t g = 0; g < n; ++g) {
      src_ids[static_cast<size_t>(g / 10)].push_back(g);
      dst_ids[static_cast<size_t>((g * 7) % 3)].push_back(g);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);
    Rearranger rearranger(comm, Router::build(comm.rank(), src_map, dst_map));

    AttrVect src({"x"}, static_cast<size_t>(src_map.local_size(comm.rank())));
    const auto my_src = src_map.local_ids(comm.rank());
    for (size_t k = 0; k < my_src.size(); ++k)
      src.field("x")[k] = std::sin(static_cast<double>(my_src[k]) * 0.731);

    AttrVect dst_a({"x"}, static_cast<size_t>(dst_map.local_size(comm.rank())));
    AttrVect dst_b({"x"}, static_cast<size_t>(dst_map.local_size(comm.rank())));
    rearranger.rearrange(src, dst_a, Strategy::kAlltoallv);
    rearranger.rearrange(src, dst_b, Strategy::kSplitPhase);
    for (size_t k = 0; k < dst_a.num_points(); ++k)
      EXPECT_EQ(dst_a.field("x")[k], dst_b.field("x")[k]);  // bitwise
  });
}

TEST(Rearranger, FieldMismatchThrows) {
  run_ranks(1, [](par::Comm& comm) {
    const GlobalSegMap map = GlobalSegMap::from_all({{0, 1}});
    Rearranger rearranger(comm, Router::build(0, map, map));
    AttrVect src({"a"}, 2);
    AttrVect dst({"b"}, 2);
    EXPECT_THROW(rearranger.rearrange(src, dst), ap3::Error);
  });
}

// --- SparseMatrix / RegridOp --------------------------------------------------------

TEST(SparseMatrix, InverseDistanceRowsNormalized) {
  std::vector<GeoPoint> src, dst;
  for (int i = 0; i < 20; ++i)
    src.push_back({0.3 * i, 0.1 * i - 1.0});
  for (int i = 0; i < 7; ++i)
    dst.push_back({0.3 * i + 0.05, 0.1 * i - 0.95});
  const SparseMatrix m = SparseMatrix::inverse_distance(dst, src, 3);
  EXPECT_LT(m.max_row_sum_deviation(), 1e-12);
  EXPECT_EQ(m.num_entries(), 7u * 3u);
}

TEST(SparseMatrix, ExactHitGetsDeltaWeight) {
  std::vector<GeoPoint> src = {{0.0, 0.0}, {1.0, 0.5}};
  std::vector<GeoPoint> dst = {{1.0, 0.5}};
  const SparseMatrix m = SparseMatrix::inverse_distance(dst, src, 2);
  ASSERT_EQ(m.num_entries(), 1u);
  EXPECT_EQ(m.entries()[0].src, 1);
  EXPECT_DOUBLE_EQ(m.entries()[0].weight, 1.0);
}

TEST(SparseMatrix, ConstantFieldPreserved) {
  // Interpolation with normalized rows must reproduce constants exactly —
  // the basic conservation sanity check for coupler remapping.
  std::vector<GeoPoint> src, dst;
  ap3::Rng rng(3);
  for (int i = 0; i < 50; ++i)
    src.push_back({rng.uniform(0, 2 * constants::kPi),
                   rng.uniform(-1.2, 1.2)});
  for (int i = 0; i < 20; ++i)
    dst.push_back({rng.uniform(0, 2 * constants::kPi),
                   rng.uniform(-1.2, 1.2)});
  const SparseMatrix m = SparseMatrix::inverse_distance(dst, src, 4);
  const std::vector<double> ones(50, 3.7);
  const auto out = m.apply_serial(ones, 20);
  for (double v : out) EXPECT_NEAR(v, 3.7, 1e-12);
}

TEST(RegridOp, DistributedMatchesSerial) {
  run_ranks(4, [](par::Comm& comm) {
    // Source grid: 40 points on a circle; dest: 24 points offset.
    std::vector<GeoPoint> src_pts, dst_pts;
    for (int i = 0; i < 40; ++i)
      src_pts.push_back({2 * constants::kPi * i / 40.0, 0.6 * std::sin(i * 0.5)});
    for (int i = 0; i < 24; ++i)
      dst_pts.push_back({2 * constants::kPi * i / 24.0 + 0.01, 0.55 * std::sin(i * 0.7)});
    const SparseMatrix matrix = SparseMatrix::inverse_distance(dst_pts, src_pts, 3);

    std::vector<std::vector<std::int64_t>> src_ids(4), dst_ids(4);
    for (int r = 0; r < 4; ++r) {
      src_ids[static_cast<size_t>(r)] = block_ids(40, r, 4);
      dst_ids[static_cast<size_t>(r)] = cyclic_ids(24, r, 4);
    }
    const GlobalSegMap src_map = GlobalSegMap::from_all(src_ids);
    const GlobalSegMap dst_map = GlobalSegMap::from_all(dst_ids);

    std::vector<double> global_src(40);
    for (int i = 0; i < 40; ++i) global_src[static_cast<size_t>(i)] = std::cos(0.3 * i);
    const auto serial = matrix.apply_serial(global_src, 24);

    RegridOp op(comm, matrix, src_map, dst_map);
    const auto my_src_ids = src_map.local_ids(comm.rank());
    std::vector<double> local_src(my_src_ids.size());
    for (size_t k = 0; k < my_src_ids.size(); ++k)
      local_src[k] = global_src[static_cast<size_t>(my_src_ids[k])];
    const auto local_out = op.apply(local_src);

    const auto my_dst_ids = dst_map.local_ids(comm.rank());
    ASSERT_EQ(local_out.size(), my_dst_ids.size());
    for (size_t k = 0; k < my_dst_ids.size(); ++k)
      EXPECT_NEAR(local_out[k], serial[static_cast<size_t>(my_dst_ids[k])], 1e-12);
  });
}

}  // namespace
