// Accuracy-evaluation statistics used by the mixed-precision validation
// (§5.2.3): relative L2 norms for GRIST fields and grid-area-weighted RMSD
// for LICOM tripolar-grid fields.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "base/error.hpp"

namespace ap3::stats {

inline double mean(std::span<const double> x) {
  AP3_REQUIRE(!x.empty());
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

inline double variance(std::span<const double> x) {
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

/// Relative L2 norm of (test − ref) against ref — the GRIST mixed-precision
/// acceptance metric (threshold 5 %).
inline double relative_l2(std::span<const double> test,
                          std::span<const double> ref) {
  AP3_REQUIRE(test.size() == ref.size() && !ref.empty());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double d = test[i] - ref[i];
    num += d * d;
    den += ref[i] * ref[i];
  }
  AP3_REQUIRE_MSG(den > 0.0, "relative_l2: reference field is identically zero");
  return std::sqrt(num / den);
}

/// Plain RMSD.
inline double rmsd(std::span<const double> test, std::span<const double> ref) {
  AP3_REQUIRE(test.size() == ref.size() && !ref.empty());
  double s = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double d = test[i] - ref[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(ref.size()));
}

/// Grid-area-weighted RMSD — the LICOM tripolar-grid acceptance metric.
/// Points with zero weight (land) do not contribute.
inline double weighted_rmsd(std::span<const double> test,
                            std::span<const double> ref,
                            std::span<const double> area) {
  AP3_REQUIRE(test.size() == ref.size() && test.size() == area.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double d = test[i] - ref[i];
    num += area[i] * d * d;
    den += area[i];
  }
  AP3_REQUIRE_MSG(den > 0.0, "weighted_rmsd: total weight is zero");
  return std::sqrt(num / den);
}

/// Pearson correlation, used to score AI-physics skill.
inline double correlation(std::span<const double> x, std::span<const double> y) {
  AP3_REQUIRE(x.size() == y.size() && x.size() > 1);
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

/// Coefficient of determination R² of prediction y against truth x.
inline double r_squared(std::span<const double> truth,
                        std::span<const double> pred) {
  AP3_REQUIRE(truth.size() == pred.size() && !truth.empty());
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace ap3::stats
