// Asynchronous execution: streams and events over the process thread pool.
//
// A Stream is an ordered queue of tasks (CUDA-stream-like): launches enqueued
// on the same stream run one at a time in FIFO order on pool worker threads,
// while the enqueuing rank thread keeps going — typically into a
// communication window it wants to overlap (see mct::Rearranger::
// rearrange_begin/_end and the coupler's --overlap pipeline). Each launch
// returns an Event that can be waited on, polled, or passed as a dependency
// of a later launch on any stream.
//
// Determinism contract: parallel_for_async / parallel_reduce_async use the
// exact chunk partitioning of their synchronous counterparts (pp/exec.hpp's
// detail::run_for / run_reduce executed on a pool thread, where nested gangs
// inline chunk-serial in chunk order). Reduce partials therefore combine in
// the same order as a synchronous launch, and results are bitwise identical
// across sync/async and across execution spaces.
//
// Observability: the enqueue site's RankBuffer and nesting depth are captured
// with the task; the worker adopts that buffer (obs::BufferScope) while the
// task runs, so spans and counters — including kSunwayCPE simulated-cycle
// charges — attribute to the simulated rank that launched the work, not to
// the anonymous worker thread.
//
// Caveat: a task's dependency wait occupies its worker. Dependency chains
// across more streams than the pool has workers can therefore starve; keep
// cross-stream graphs shallow (the coupled driver uses a single stream).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "pp/exec.hpp"
#include "pp/pool.hpp"

namespace ap3::pp {

namespace detail {
struct EventState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};
}  // namespace detail

/// Completion handle for one async launch. Default-constructed events are
/// "null" and always ready — convenient as an empty dependency slot.
class Event {
 public:
  Event() = default;

  bool valid() const { return state_ != nullptr; }
  /// True once the task finished (successfully or not). Non-blocking.
  bool ready() const;
  /// Blocks until the task finished; rethrows the task's exception, if any
  /// (a failed dependency fails its dependents the same way).
  void wait() const;

 private:
  friend class Stream;
  explicit Event(std::shared_ptr<detail::EventState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

/// FIFO in-order task queue executed by pool workers.
class Stream {
 public:
  explicit Stream(ThreadPool& pool = ThreadPool::global());
  /// Quiesces the stream (sync) before destruction.
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues an arbitrary task. `deps` are waited before `body` runs; the
  /// label becomes the task's span name on the enqueuing rank's timeline.
  Event enqueue(std::string label, std::function<void()> body,
                std::vector<Event> deps = {});

  /// Blocks until every task enqueued so far has finished. Does not rethrow
  /// task exceptions (those surface through Event::wait).
  void sync();

 private:
  struct Task {
    std::string label;
    std::function<void()> body;
    std::vector<Event> deps;
    std::shared_ptr<detail::EventState> state;
    obs::RankBuffer* home = nullptr;  ///< enqueue-site buffer for attribution
    std::uint32_t depth = 0;          ///< enqueue-site span nesting depth
  };

  void pump();
  static void run_task(Task& task);

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  bool draining_ = false;  ///< a pump task is scheduled or running
};

/// Result handle of parallel_reduce_async: `get()` waits and returns the
/// reduction value (bitwise identical to the synchronous launch).
template <typename Scalar>
struct AsyncResult {
  Event event;
  std::shared_ptr<Scalar> slot;
  Scalar get() const {
    event.wait();
    return *slot;
  }
};

/// Async parallel_for: enqueues the launch on `stream`, returns immediately.
template <typename Functor>
Event parallel_for_async(Stream& stream, const RangePolicy& policy, Functor fn,
                         std::vector<Event> deps = {}) {
  std::string label(policy.label.empty()
                        ? std::string_view("pp:parallel_for_async")
                        : policy.label);
  RangePolicy p = policy;
  p.label = {};  // the caller's view may dangle; the copied string is the name
  return stream.enqueue(
      std::move(label),
      [p, fn = std::move(fn)] {
        detail::charge_launch(p.space, p.end - p.begin);
        detail::run_for(p, fn);
      },
      std::move(deps));
}

/// Async parallel_reduce: returns a waitable AsyncResult. Partials combine in
/// chunk order from `init`, exactly as the synchronous entry point.
template <typename Scalar, typename Functor>
AsyncResult<Scalar> parallel_reduce_async(Stream& stream,
                                          const RangePolicy& policy, Functor fn,
                                          Scalar init = Scalar{},
                                          std::vector<Event> deps = {}) {
  std::string label(policy.label.empty()
                        ? std::string_view("pp:parallel_reduce_async")
                        : policy.label);
  RangePolicy p = policy;
  p.label = {};
  auto slot = std::make_shared<Scalar>(init);
  Event event = stream.enqueue(
      std::move(label),
      [p, fn = std::move(fn), init, slot] {
        detail::charge_launch(p.space, p.end - p.begin);
        *slot = detail::run_reduce(p, fn, init);
      },
      std::move(deps));
  return {event, slot};
}

}  // namespace ap3::pp
