file(REMOVE_RECURSE
  "CMakeFiles/test_ai.dir/test_ai.cpp.o"
  "CMakeFiles/test_ai.dir/test_ai.cpp.o.d"
  "test_ai"
  "test_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
