file(REMOVE_RECURSE
  "CMakeFiles/ap3_io.dir/subfile.cpp.o"
  "CMakeFiles/ap3_io.dir/subfile.cpp.o.d"
  "libap3_io.a"
  "libap3_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
