#include "perf/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "sunway/arch.hpp"
#include "sunway/coregroup.hpp"

namespace ap3::perf {

using sunway::CoreGroup;
using sunway::ExecTarget;
using sunway::KernelWork;

double ScalingCurve::efficiency_model() const {
  AP3_REQUIRE(points.size() >= 2);
  const CurvePoint& a = points.front();
  const CurvePoint& b = points.back();
  return (b.sypd_model / a.sypd_model) /
         (static_cast<double>(b.units) / static_cast<double>(a.units));
}

double ScalingCurve::efficiency_paper() const {
  AP3_REQUIRE(points.size() >= 2);
  const CurvePoint& a = points.front();
  const CurvePoint& b = points.back();
  if (a.sypd_paper <= 0.0 || b.sypd_paper <= 0.0) return 0.0;
  return (b.sypd_paper / a.sypd_paper) /
         (static_cast<double>(b.units) / static_cast<double>(a.units));
}

ScalingModel::ScalingModel()
    : sunway_net_(MachineKind::kSunwayOceanLight),
      orise_net_(MachineKind::kOrise) {}

namespace {

/// Boundary cell count of a near-square subdomain of `cells` cells.
double boundary_cells(double cells_per_domain) {
  return 4.0 * std::sqrt(std::max(1.0, cells_per_domain));
}

}  // namespace

DayCost ScalingModel::atm_day_sunway(const AtmWorkload& w, long long nodes,
                                     CodePath path) const {
  const double cgs =
      static_cast<double>(nodes) * sunway::kCoreGroupsPerCpu;
  const double cells_per_cg = static_cast<double>(w.cells) / cgs;
  const ExecTarget target =
      path == CodePath::kCpeOpt ? ExecTarget::kCpeCluster : ExecTarget::kMpe;

  DayCost day;

  // --- dycore -----------------------------------------------------------------
  {
    KernelWork work;
    work.flops = cells_per_cg * w.nlev * w.dycore_flops;
    work.bytes = cells_per_cg * w.nlev * w.bytes_per_cell_level;
    const double compute = CoreGroup::predict(work, target);
    const double halo_bytes =
        boundary_cells(cells_per_cg) * w.nlev * w.halo_bytes_per_cell_level;
    const double comm =
        sunway_net_.halo_seconds(halo_bytes / 6.0, 6, nodes) +
        sunway_net_.allreduce_seconds(8.0 * w.nlev, nodes);  // semi-implicit
    day.compute += w.dycore_steps_per_day * compute;
    day.comm += w.dycore_steps_per_day * comm;
  }

  // --- tracer transport ------------------------------------------------------------
  {
    KernelWork work;
    work.flops = cells_per_cg * w.nlev * w.tracer_flops;
    work.bytes = cells_per_cg * w.nlev * w.bytes_per_cell_level * 0.5;
    const double compute = CoreGroup::predict(work, target);
    const double halo_bytes =
        boundary_cells(cells_per_cg) * w.nlev * w.halo_bytes_per_cell_level;
    const double comm = sunway_net_.halo_seconds(halo_bytes / 6.0, 6, nodes);
    day.compute += w.tracer_steps_per_day * compute;
    day.comm += w.tracer_steps_per_day * comm;
  }

  // --- physics ----------------------------------------------------------------------
  {
    KernelWork work;
    if (w.ai_physics) {
      work.ai_flops = cells_per_cg * w.ai_physics_flops;
      work.bytes = cells_per_cg * w.nlev * 5.0 * 8.0;
    } else {
      // Conventional suite: branchy scalar code reaching ~20 % of the CPE
      // cluster's scalar rate — expressed as a 5x flop inflation.
      work.flops = cells_per_cg * w.conventional_physics_flops * 5.0;
      work.bytes = cells_per_cg * w.nlev * 12.0 * 8.0;
    }
    day.compute += w.physics_steps_per_day * CoreGroup::predict(work, target);
  }
  return day;
}

DayCost ScalingModel::ocn_day_sunway(const OcnWorkload& w, long long nodes,
                                     CodePath path) const {
  const double cgs = static_cast<double>(nodes) * sunway::kCoreGroupsPerCpu;
  const double surface_frac = w.exclude_non_ocean ? 0.71 : 1.0;
  const double surface_per_cg = w.horizontal_points() * surface_frac / cgs;
  const double points_per_cg = w.computed_points() / cgs;
  const ExecTarget target =
      path == CodePath::kCpeOpt ? ExecTarget::kCpeCluster : ExecTarget::kMpe;

  DayCost day;

  // --- barotropic (2-D, allreduce-heavy) -----------------------------------------
  {
    KernelWork work;
    work.flops = surface_per_cg * w.barotropic_flops;
    work.bytes = surface_per_cg * 10.0 * 8.0;
    const double compute = CoreGroup::predict(work, target);
    const double halo_bytes = boundary_cells(surface_per_cg) * 3.0 * 8.0;
    const double comm = sunway_net_.halo_seconds(halo_bytes / 4.0, 4, nodes) +
                        sunway_net_.allreduce_seconds(8.0, nodes);
    day.compute += w.barotropic_steps_per_day * compute;
    day.comm += w.barotropic_steps_per_day * comm;
  }

  // --- baroclinic + tracers (3-D) ----------------------------------------------------
  {
    KernelWork work;
    work.flops =
        points_per_cg * (w.baroclinic_flops + w.tracer_flops);
    work.bytes = points_per_cg * w.bytes_per_point;
    const double compute = CoreGroup::predict(work, target);
    const double halo_bytes =
        boundary_cells(surface_per_cg) * w.nz * w.halo_bytes_per_point;
    const double comm = sunway_net_.halo_seconds(halo_bytes / 4.0, 4, nodes);
    day.compute += w.baroclinic_steps_per_day * compute;
    day.comm += w.baroclinic_steps_per_day * comm;
  }
  return day;
}

DayCost ScalingModel::ocn_day_orise(const OcnWorkload& w, long long gpus,
                                    bool optimized) const {
  OcnWorkload work = w;
  work.exclude_non_ocean = optimized;  // the ORISE "OPT" is the §5.2.2 remap
  const double surface_frac = optimized ? 0.71 : 1.0;
  const double surface_per_gpu =
      work.horizontal_points() * surface_frac / static_cast<double>(gpus);
  const double points_per_gpu =
      work.computed_points() / static_cast<double>(gpus);

  DayCost day;
  {
    KernelWork k;
    k.flops = surface_per_gpu * work.barotropic_flops;
    k.bytes = surface_per_gpu * 10.0 * 8.0;
    const double compute = sunway::orise_gpu_seconds(k);
    // Halo staged over PCIe, then the network.
    const double halo_bytes = boundary_cells(surface_per_gpu) * 3.0 * 8.0;
    const double pcie = halo_bytes / (sunway::kOrisePcieBandwidthGBs * 1e9);
    const double comm =
        2.0 * pcie + orise_net_.halo_seconds(halo_bytes / 4.0, 4, gpus);
    day.compute += work.barotropic_steps_per_day * compute;
    day.comm += work.barotropic_steps_per_day * comm;
  }
  {
    KernelWork k;
    k.flops = points_per_gpu * (work.baroclinic_flops + work.tracer_flops);
    k.bytes = points_per_gpu * work.bytes_per_point;
    const double compute = sunway::orise_gpu_seconds(k);
    const double halo_bytes =
        boundary_cells(surface_per_gpu) * work.nz * work.halo_bytes_per_point;
    const double pcie = halo_bytes / (sunway::kOrisePcieBandwidthGBs * 1e9);
    const double comm =
        2.0 * pcie + orise_net_.halo_seconds(halo_bytes / 4.0, 4, gpus);
    day.compute += work.baroclinic_steps_per_day * compute;
    day.comm += work.baroclinic_steps_per_day * comm;
  }
  return day;
}

DayCost ScalingModel::coupled_day(const AtmWorkload& aw, const OcnWorkload& ow,
                                  long long nodes, double atm_fraction) const {
  // §7.2 layout: domain 1 = coupler + atm + ice + land, domain 2 = ocean,
  // running concurrently; the slower domain paces the model.
  const auto atm_nodes = static_cast<long long>(
      std::max(1.0, atm_fraction * static_cast<double>(nodes)));
  const long long ocn_nodes = std::max<long long>(1, nodes - atm_nodes);
  const DayCost atm = atm_day_sunway(aw, atm_nodes, CodePath::kCpeOpt);
  const DayCost ocn = ocn_day_sunway(ow, ocn_nodes, CodePath::kCpeOpt);

  DayCost day = atm.total() >= ocn.total() ? atm : ocn;

  // Coupler rearrangement: 8 fields × surface points × 8 B per coupling
  // event, 180 atm + 36 ocn + 180 ice events/day, moved across ~nodes/8
  // bisection ports (§5.2.4's p2p path overlaps ~half). The per-event bytes
  // split per network level by intra_fraction — a job inside one supernode
  // never pays the oversubscribed links, a large job pays them for almost
  // everything — instead of charging the inter rate unconditionally.
  const double surface_points =
      std::min(static_cast<double>(aw.cells), ow.horizontal_points() * 0.71);
  const double bytes_per_event = 8.0 * surface_points * 8.0;
  const double ports = std::max(1.0, static_cast<double>(nodes) / 8.0);
  const double f = sunway_net_.intra_fraction(nodes);
  LevelTraffic per_event;
  per_event.intra_bytes = f * bytes_per_event / ports;
  per_event.inter_bytes = (1.0 - f) * bytes_per_event / ports;
  const double events = 180.0 + 36.0 + 180.0;
  day.comm +=
      0.5 * events * (sunway_net_.exchange_seconds(per_event) + 200e-6);
  return day;
}

ScalingCurve ScalingModel::calibrate(
    const std::string& label, std::vector<CurvePoint> points,
    const std::function<DayCost(long long)>& cost) const {
  AP3_REQUIRE(points.size() >= 2);
  ScalingCurve curve;
  curve.label = label;

  const CurvePoint& first = points.front();
  const CurvePoint& last = points.back();
  const DayCost c_first = cost(first.units);
  const DayCost c_last = cost(last.units);

  double a = 1.0, b = 1.0;
  if (first.sypd_paper > 0.0 && last.sypd_paper > 0.0) {
    const double t_first = seconds_per_day_from_sypd(first.sypd_paper);
    const double t_last = seconds_per_day_from_sypd(last.sypd_paper);
    // Solve [Cf Mf; Cl Ml] [a b]^T = [tf tl]^T.
    const double det =
        c_first.compute * c_last.comm - c_last.compute * c_first.comm;
    if (std::abs(det) > 1e-30) {
      a = (t_first * c_last.comm - t_last * c_first.comm) / det;
      b = (t_last * c_first.compute - t_first * c_last.compute) / det;
    }
    if (a <= 0.0 || b < 0.0) {
      // Degenerate fit: anchor compute at the first point, comm at the last.
      b = std::max(0.0, b);
      a = (t_first - b * c_first.comm) / c_first.compute;
      if (a <= 0.0) a = t_first / c_first.total();
    }
  } else if (first.sypd_paper > 0.0) {
    a = b = seconds_per_day_from_sypd(first.sypd_paper) / c_first.total();
  }
  curve.calib_compute = a;
  curve.calib_comm = b;

  for (CurvePoint& p : points) {
    const DayCost c = cost(p.units);
    p.sypd_model =
        sypd_from_seconds_per_day(a * c.compute + b * c.comm);
  }
  curve.points = std::move(points);
  return curve;
}

namespace {
long long nodes_from_cpe_cores(long long cores) {
  return cores / sunway::kCoresPerCpu;
}
long long nodes_from_mpe_cores(long long cores) {
  return cores / sunway::kCoreGroupsPerCpu;
}
}  // namespace

std::vector<ScalingCurve> ScalingModel::table2_strong_scaling() const {
  std::vector<ScalingCurve> curves;

  const AtmWorkload atm3 = AtmWorkload::paper(3.0);
  const AtmWorkload atm1 = AtmWorkload::paper(1.0);
  const OcnWorkload ocn2 = OcnWorkload::paper(2.0);
  const OcnWorkload ocn1 = OcnWorkload::paper(1.0);

  auto atm_cost = [this](const AtmWorkload& w, CodePath path) {
    return [this, w, path](long long nodes) {
      return atm_day_sunway(w, nodes, path);
    };
  };
  auto ocn_cost = [this](const OcnWorkload& w, CodePath path) {
    return [this, w, path](long long nodes) {
      return ocn_day_sunway(w, nodes, path);
    };
  };

  // 3 km ATM, MPE baseline (§7.2: 0.0032 → 0.0063 SYPD, PE 24.6 %).
  curves.push_back(calibrate(
      "3km ATM MPE",
      {{32768, nodes_from_mpe_cores(32768), 0.0032, 0},
       {65536, nodes_from_mpe_cores(65536), 0, 0},
       {131072, nodes_from_mpe_cores(131072), 0, 0},
       {262144, nodes_from_mpe_cores(262144), 0.0063, 0}},
      atm_cost(atm3, CodePath::kMpe)));

  // 3 km ATM, CPE+OPT (0.36 → 1.16 SYPD, PE 40.3 %).
  curves.push_back(calibrate(
      "3km ATM CPE+OPT",
      {{2129920, nodes_from_cpe_cores(2129920), 0.36, 0},
       {4259840, nodes_from_cpe_cores(4259840), 0, 0},
       {8519680, nodes_from_cpe_cores(8519680), 0, 0},
       {17039360, nodes_from_cpe_cores(17039360), 1.16, 0}},
      atm_cost(atm3, CodePath::kCpeOpt)));

  // 1 km ATM, CPE+OPT (0.20 → 0.85 SYPD on 34.1 M cores, PE 51.5 %).
  curves.push_back(calibrate(
      "1km ATM CPE+OPT",
      {{4259840, nodes_from_cpe_cores(4259840), 0.20, 0},
       {8519680, nodes_from_cpe_cores(8519680), 0, 0},
       {17039360, nodes_from_cpe_cores(17039360), 0, 0},
       {34078270, nodes_from_cpe_cores(34078270), 0.85, 0}},
      atm_cost(atm1, CodePath::kCpeOpt)));

  // 2 km OCN, MPE baseline (0.0014 → 0.019 SYPD, PE 88.6 %).
  curves.push_back(calibrate(
      "2km OCN MPE",
      {{19608, nodes_from_mpe_cores(19608), 0.0014, 0},
       {78432, nodes_from_mpe_cores(78432), 0, 0},
       {313728, nodes_from_mpe_cores(313728), 0.019, 0}},
      ocn_cost(ocn2, CodePath::kMpe)));

  // 2 km OCN, CPE+OPT (0.21 → 1.59 SYPD, PE 49.4 %).
  curves.push_back(calibrate(
      "2km OCN CPE+OPT",
      {{1273415, nodes_from_cpe_cores(1273415), 0.21, 0},
       {2505880, nodes_from_cpe_cores(2505880), 0, 0},
       {4941755, nodes_from_cpe_cores(4941755), 0, 0},
       {19513780, nodes_from_cpe_cores(19513780), 1.59, 0}},
      ocn_cost(ocn2, CodePath::kCpeOpt)));

  // 1 km OCN on ORISE, original (the 2024 Gordon Bell finalist record path).
  curves.push_back(calibrate(
      "1km OCN ORISE Original",
      {{4000, 4000, 0.77, 0}, {8000, 8000, 1.25, 0}, {12000, 12000, 1.49, 0}},
      [this, ocn1](long long gpus) { return ocn_day_orise(ocn1, gpus, false); }));

  // 1 km OCN on ORISE, optimized (0.92 → 1.98 SYPD on 16085 GPUs, PE 54.3 %).
  curves.push_back(calibrate(
      "1km OCN ORISE OPT",
      {{4060, 4060, 0.92, 0},
       {8060, 8060, 1.45, 0},
       {11927, 11927, 1.76, 0},
       {16085, 16085, 1.98, 0}},
      [this, ocn1](long long gpus) { return ocn_day_orise(ocn1, gpus, true); }));

  // AP3ESM 3v2 coupled (0.18 → 1.01 SYPD on 36.6 M cores, PE 52.2 %).
  const OcnWorkload ocn2c = OcnWorkload::paper(2.0);
  curves.push_back(calibrate(
      "AP3ESM 3v2",
      {{3403335, nodes_from_cpe_cores(3403335), 0.18, 0},
       {8519680, nodes_from_cpe_cores(8519680), 0.40, 0},
       {17039360, nodes_from_cpe_cores(17039360), 0.71, 0},
       {36553140, nodes_from_cpe_cores(36553140), 1.01, 0}},
      [this, atm3, ocn2c](long long nodes) {
        return coupled_day(atm3, ocn2c, nodes, 0.75);
      }));

  // AP3ESM 1v1 coupled (0.14 → 0.54 SYPD on 37.2 M cores, PE 90.7 %).
  curves.push_back(calibrate(
      "AP3ESM 1v1",
      {{8745360, nodes_from_cpe_cores(8745360), 0.14, 0},
       {17359160, nodes_from_cpe_cores(17359160), 0.23, 0},
       {37172980, nodes_from_cpe_cores(37172980), 0.54, 0}},
      [this, atm1, ocn1](long long nodes) {
        return coupled_day(atm1, ocn1, nodes, 0.75);
      }));

  return curves;
}

ScalingCurve ScalingModel::fig8b_weak_atm() const {
  // 25/10/6/3 km on 683/2731/10922/43691 nodes; the paper reports 87.85 %
  // weak efficiency at 17 M cores. Reuse the 3 km CPE+OPT calibration.
  const std::vector<double> res = {25.0, 10.0, 6.0, 3.0};
  const std::vector<long long> nodes = {683, 2731, 10922, 43691};
  // Borrow coefficients from the strong 3 km curve.
  const ScalingCurve strong = table2_strong_scaling()[1];
  ScalingCurve curve;
  curve.label = "weak ATM 25/10/6/3km";
  curve.calib_compute = strong.calib_compute;
  curve.calib_comm = strong.calib_comm;
  for (std::size_t k = 0; k < res.size(); ++k) {
    const AtmWorkload w = AtmWorkload::paper(res[k]);
    const DayCost c = atm_day_sunway(w, nodes[k], CodePath::kCpeOpt);
    CurvePoint p;
    p.units = nodes[k];
    p.cores = nodes[k] * sunway::kCoresPerCpu;
    p.sypd_model = sypd_from_seconds_per_day(curve.calib_compute * c.compute +
                                             curve.calib_comm * c.comm);
    curve.points.push_back(p);
  }
  return curve;
}

ScalingCurve ScalingModel::fig8b_weak_ocn() const {
  const std::vector<double> res = {10.0, 5.0, 3.0, 2.0};
  const std::vector<long long> nodes = {2107, 8212, 18225, 50035};
  const ScalingCurve strong = table2_strong_scaling()[4];  // 2 km CPE+OPT
  ScalingCurve curve;
  curve.label = "weak OCN 10/5/3/2km";
  curve.calib_compute = strong.calib_compute;
  curve.calib_comm = strong.calib_comm;
  for (std::size_t k = 0; k < res.size(); ++k) {
    const OcnWorkload w = OcnWorkload::paper(res[k]);
    const DayCost c = ocn_day_sunway(w, nodes[k], CodePath::kCpeOpt);
    CurvePoint p;
    p.units = nodes[k];
    p.cores = nodes[k] * sunway::kCoresPerCpu;
    p.sypd_model = sypd_from_seconds_per_day(curve.calib_compute * c.compute +
                                             curve.calib_comm * c.comm);
    curve.points.push_back(p);
  }
  return curve;
}

double ScalingModel::weak_efficiency(const ScalingCurve& curve,
                                     const std::vector<double>& points) {
  AP3_REQUIRE(curve.points.size() == points.size() && points.size() >= 2);
  // Throughput in grid-point-steps per wall second per node, normalized.
  const auto rate = [&](std::size_t k) {
    return points[k] * curve.points[k].sypd_model /
           static_cast<double>(curve.points[k].units);
  };
  return rate(points.size() - 1) / rate(0);
}

}  // namespace ap3::perf
