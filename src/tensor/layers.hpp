// Neural-network layers with backprop, enough to build the paper's two AI
// physics modules: the 11-layer/5-ResUnit tendency CNN and the 7-layer
// residual radiation MLP.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "tensor/tensor.hpp"

namespace ap3::tensor {

/// A trainable parameter: value and accumulated gradient.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  /// Forward pass; implementations cache what backward needs.
  virtual Tensor forward(const Tensor& x) = 0;
  /// Backward pass: dL/d(output) in, dL/d(input) out; accumulates parameter
  /// gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual void collect_params(std::vector<Param>& out) = 0;
  virtual std::string name() const = 0;

  std::size_t num_params() {
    std::vector<Param> params;
    collect_params(params);
    std::size_t n = 0;
    for (const Param& p : params) n += p.value->size();
    return n;
  }
  void zero_grads() {
    std::vector<Param> params;
    collect_params(params);
    for (Param& p : params) p.grad->zero();
  }
};

/// Fully connected: x (B, in) -> (B, out); weight (out, in), He init.
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string name() const override { return "Dense"; }

  Tensor weight, bias, grad_weight, grad_bias;

 private:
  Tensor input_;
};

/// Same-padding conv: x (B, Cin, L) -> (B, Cout, L); He init.
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t cin, std::size_t cout, std::size_t k, Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string name() const override { return "Conv1D"; }

  Tensor kernel, bias, grad_kernel, grad_bias;

 private:
  Tensor input_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>&) override {}
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

/// Residual unit: y = relu(inner(x) + x). `inner` must preserve shape.
class ResUnit : public Layer {
 public:
  explicit ResUnit(std::vector<std::unique_ptr<Layer>> inner);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string name() const override { return "ResUnit"; }

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
  Tensor pre_act_;  // inner(x) + x, pre-ReLU
};

class Sequential : public Layer {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string name() const override { return "Sequential"; }
  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Weight (de)serialization: flat list of all parameter tensors in order.
  std::vector<float> save_weights();
  void load_weights(const std::vector<float>& flat);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ap3::tensor
