file(REMOVE_RECURSE
  "../bench/bench_coupler_rearrange"
  "../bench/bench_coupler_rearrange.pdb"
  "CMakeFiles/bench_coupler_rearrange.dir/bench_coupler_rearrange.cpp.o"
  "CMakeFiles/bench_coupler_rearrange.dir/bench_coupler_rearrange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupler_rearrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
