#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// tid for a buffer: simulated rank when labeled, high offset otherwise.
int tid_for(int rank, std::size_t buffer_index) {
  return rank >= 0 ? rank : 100000 + static_cast<int>(buffer_index);
}

}  // namespace

std::string tree_report() {
  std::ostringstream os;
  const auto all = buffers();
  for (std::size_t b = 0; b < all.size(); ++b) {
    const RankBuffer& buffer = *all[b];
    const auto spans = buffer.aggregate_spans();
    const auto counters = buffer.counters();
    if (spans.empty() && counters.empty()) continue;

    const int rank = buffer.rank();
    if (rank >= 0)
      os << "rank " << rank << "\n";
    else
      os << "thread " << b << "\n";

    if (!spans.empty()) {
      // Sorted by name so parents precede children ("a" < "a:b").
      auto by_name = spans;
      std::sort(by_name.begin(), by_name.end(),
                [](const auto& a, const auto& c) { return a.name < c.name; });
      os << "  span                                       calls      total(s)\n";
      for (const SpanStats& s : by_name) {
        const auto depth = std::count(s.name.begin(), s.name.end(), ':');
        std::string label(static_cast<std::size_t>(depth) * 2, ' ');
        label += s.name;
        if (label.size() < 42) label.resize(42, ' ');
        os << "  " << label << ' ' << s.calls << "  "
           << format_double(s.total_seconds) << "\n";
      }
    }
    if (!counters.empty()) {
      os << "  counter                                    value\n";
      for (const auto& [name, c] : counters) {
        std::string label = name;
        if (label.size() < 42) label.resize(42, ' ');
        os << "  " << label << ' ' << format_double(c.value)
           << (c.is_gauge ? "  (gauge)" : "") << "\n";
      }
    }
    if (buffer.dropped_events() > 0)
      os << "  (" << buffer.dropped_events() << " events dropped at cap)\n";
  }
  if (os.str().empty()) return "observability: no data recorded\n";
  return os.str();
}

std::string chrome_trace_json() {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto all = buffers();
  for (std::size_t b = 0; b < all.size(); ++b) {
    const RankBuffer& buffer = *all[b];
    const auto events = buffer.events();
    if (events.empty()) continue;
    const auto names = buffer.names();
    const int rank = buffer.rank();
    const int tid = tid_for(rank, b);

    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << (rank >= 0 ? "rank " + std::to_string(rank)
                     : "thread " + std::to_string(b))
       << "\"}}";

    for (const SpanEvent& event : events) {
      os << ",{\"name\":\"" << json_escape(names[event.name_id])
         << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
         << ",\"ts\":" << format_double(event.start_seconds * 1e6)
         << ",\"dur\":"
         << format_double((event.end_seconds - event.start_seconds) * 1e6)
         << ",\"args\":{\"depth\":" << event.depth << "}}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\",\"counters\":{";

  // Merged counter totals across buffers: counters sum, gauges max.
  std::map<std::string, CounterValue> merged;
  for (const auto& buffer : all) {
    for (const auto& [name, c] : buffer->counters()) {
      CounterValue& m = merged[name];
      m.is_gauge = m.is_gauge || c.is_gauge;
      m.value = m.is_gauge ? std::max(m.value, c.value) : m.value + c.value;
      m.updates += c.updates;
    }
  }
  bool first_counter = true;
  for (const auto& [name, c] : merged) {
    if (!first_counter) os << ",";
    first_counter = false;
    os << "\"" << json_escape(name) << "\":" << format_double(c.value);
  }
  os << "}}";
  return os.str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  out << chrome_trace_json();
  AP3_REQUIRE_MSG(out.good(), "failed writing chrome trace to " << path);
}

}  // namespace ap3::obs
