// Configuration of the GRIST-mini atmosphere component.
//
// Sub-stepping mirrors §6.1: at 1 km the paper uses dycore/tracer/model
// timesteps of 8 s / 30 s / 120 s — ratios of 1 : 3.75 : 15 with 30 vertical
// layers. This reproduction keeps those ratios (15 dycore substeps and 4
// tracer substeps per model step) at every resolution, with the dycore step
// chosen from the mesh spacing by a gravity-wave CFL condition.
#pragma once

#include <cstdint>

#include "grid/icosahedral.hpp"

namespace ap3::atm {

struct AtmConfig {
  int mesh_n = 8;            ///< icosahedral subdivision (cells = 20 n²)
  int nlev = 30;             ///< vertical layers (paper: 30)
  int dycore_substeps = 15;  ///< dycore steps per model step (120/8)
  int tracer_substeps = 4;   ///< tracer steps per model step (~120/30)
  double mean_depth_m = 1000.0;  ///< equivalent depth of the SW layer
  double drag_per_second = 2.0e-6;   ///< Rayleigh drag on momentum
  double albedo = 0.3;
  bool use_ai_physics = false;
  bool mixed_precision = false;  ///< §5.2.3 group-scaled dycore state
  /// §5.1.1: offload the conflict-free dycore loops through the SWGOMP-style
  /// directive layer (results are bitwise identical to the serial path).
  bool use_swgomp = false;
  std::uint64_t seed = 2023;

  // Synthetic straggler stall (same contract as OcnConfig's): every model
  // step sleeps stall_seconds_per_point × (owned cells with global id
  // >= stall_cell_begin) and reports the slept time on "atm:busy_seconds".
  // The icosahedral mesh has no block decomposition to re-cut, so an atm
  // straggler exercises the balancer's busy-channel assessment path without
  // ever migrating; never touches model state.
  double stall_seconds_per_point = 0.0;
  std::int64_t stall_cell_begin = -1;  ///< -1: no stall band

  /// Gravity-wave speed of the layer.
  double wave_speed() const;
  /// Dycore timestep from CFL on the mean cell spacing.
  double dycore_dt_seconds() const;
  double model_dt_seconds() const { return dycore_dt_seconds() * dycore_substeps; }
  double tracer_dt_seconds() const {
    return model_dt_seconds() / tracer_substeps;
  }

  /// The paper's five configurations (1/3/6/10/25 km); this reproduction
  /// scales the same shapes down by `shrink` (mesh_n divided, ratios kept).
  static AtmConfig for_resolution_km(double km, double shrink = 1.0);
};

}  // namespace ap3::atm
