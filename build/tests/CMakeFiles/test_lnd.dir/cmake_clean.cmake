file(REMOVE_RECURSE
  "CMakeFiles/test_lnd.dir/test_lnd.cpp.o"
  "CMakeFiles/test_lnd.dir/test_lnd.cpp.o.d"
  "test_lnd"
  "test_lnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
