# Empty dependencies file for bench_fig8b_weak_scaling.
# This may be replaced when dependencies are built.
