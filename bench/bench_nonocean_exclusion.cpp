// §5.2.2 benchmark: excluding 3-D non-ocean grid points.
//
// Runs the ocean component with and without the active-column compaction and
// reports: the fraction of 3-D points removed (paper: ~30 %), the reduction
// in column-kernel iterations, the measured wall-time ratio, and bitwise
// agreement of the results ("consistent results" in the paper).
#include <chrono>
#include <cstdio>
#include <vector>

#include "grid/partition.hpp"
#include "ocn/model.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;

struct RunResult {
  double seconds = 0.0;
  long long iterations = 0;
  std::vector<double> sst;
};

RunResult run_case(bool exclude) {
  static RunResult result;
  result = RunResult{};
  par::run(2, [&](par::Comm& comm) {
    ocn::OcnConfig config;
    config.grid = grid::TripolarConfig{96, 64, 16};
    config.exclude_non_ocean = exclude;
    ocn::OcnModel model(comm, config);
    mct::AttrVect x2o(ocn::OcnModel::import_fields(),
                      model.ocean_gids().size());
    for (auto& t : x2o.field("taux")) t = 0.1;
    model.import_state(x2o);

    comm.barrier();
    const auto start = std::chrono::steady_clock::now();
    model.run(0.0, config.baroclinic_dt_seconds() * 20);
    comm.barrier();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    result.seconds = std::max(result.seconds, secs);
    result.iterations += model.column_iterations();
    // Deterministic placement: index by global id so rank interleaving
    // cannot reorder the comparison.
    result.sst.resize(static_cast<std::size_t>(config.grid.nx) *
                          static_cast<std::size_t>(config.grid.ny),
                      0.0);
    for (auto gid : model.ocean_gids()) {
      const int i = static_cast<int>(gid % config.grid.nx) - model.x0();
      const int j = static_cast<int>(gid / config.grid.nx) - model.y0();
      result.sst[static_cast<std::size_t>(gid)] = model.temp(i, j, 0);
    }
  });
  return result;
}

}  // namespace

int main() {
  std::printf("§5.2.2 — excluding 3-D non-ocean grid points\n");
  std::printf("=============================================\n\n");

  grid::TripolarGrid grid(grid::TripolarConfig{96, 64, 16});
  std::printf("grid 96x64x16: ocean surface fraction %.3f, 3-D active "
              "fraction %.3f\n",
              grid.ocean_surface_fraction(), grid.active_volume_fraction());
  grid::ActiveCompaction compaction(grid, 8);
  std::printf("removed 3-D points: %.1f%%  (paper: ~30%%)\n",
              100.0 * compaction.removed_fraction());
  std::printf("workload imbalance after rank remapping: %.3f (1.0 = perfect)\n\n",
              compaction.load_imbalance());

  std::printf("running WITHOUT exclusion...\n");
  const RunResult baseline = run_case(false);
  std::printf("running WITH exclusion...\n\n");
  const RunResult excluded = run_case(true);

  std::printf("  metric                     baseline      excluded\n");
  std::printf("  column iterations        %10lld    %10lld  (-%.1f%%)\n",
              baseline.iterations, excluded.iterations,
              100.0 * (1.0 - static_cast<double>(excluded.iterations) /
                                 static_cast<double>(baseline.iterations)));
  std::printf("  wall time [s]            %10.3f    %10.3f  (%.2fx)\n",
              baseline.seconds, excluded.seconds,
              baseline.seconds / excluded.seconds);

  bool identical = baseline.sst.size() == excluded.sst.size();
  for (std::size_t k = 0; identical && k < baseline.sst.size(); ++k)
    identical = baseline.sst[k] == excluded.sst[k];
  std::printf("  results bitwise identical: %s\n", identical ? "YES" : "NO");
  return identical ? 0 : 1;
}
