// A small persistent worker pool backing the HostThreads execution space.
//
// parallel_for/reduce dispatch chunked index ranges to these workers; the
// pool is created once per process so repeated kernel launches (the model
// takes millions of timesteps) do not pay thread-spawn costs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ap3::pp {

class ThreadPool {
 public:
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(chunk_index) for chunk_index in [0, nchunks) across the pool and
  /// blocks until all chunks finished. Re-entrant calls are not supported.
  void run_chunks(std::size_t nchunks,
                  const std::function<void(std::size_t)>& fn);

  /// Process-wide pool; sized from hardware_concurrency (at least 2 so the
  /// parallel pathway is genuinely exercised even on 1-CPU machines).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t next_chunk_ = 0;
  std::size_t total_chunks_ = 0;
  std::size_t done_chunks_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace ap3::pp
