# Empty compiler generated dependencies file for ap3_coupler.
# This may be replaced when dependencies are built.
