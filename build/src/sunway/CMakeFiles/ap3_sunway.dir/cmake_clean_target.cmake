file(REMOVE_RECURSE
  "libap3_sunway.a"
)
