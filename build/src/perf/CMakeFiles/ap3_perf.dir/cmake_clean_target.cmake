file(REMOVE_RECURSE
  "libap3_perf.a"
)
