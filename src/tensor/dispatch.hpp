// Kernel dispatch configuration for the tensor library.
//
// Every tensor kernel (src/tensor/tensor.cpp) launches through the pp layer;
// this header carries the knobs that select *how*: the execution space, an
// optional chunk override, and the accumulation precision of dot-product
// kernels. The configuration is thread-local so an inference engine running
// on a pool worker (pp::Stream task) can pin its own space/precision without
// racing the rank thread — see ai::InferenceEngine, which scopes every
// forward pass with DispatchScope.
//
// Determinism contract: all kernels are formulated per output element with a
// fixed-order inner accumulation, so for a given Accum the results are
// bitwise identical across kSerial / kHostThreads / kSunwayCPE (including
// the LDM-tiled GEMM path, which stages identical values through simulated
// scratchpads). The defaults (kSerial, kFloat32) reproduce the pre-refactor
// serial kernels bit for bit.
//
// `pack` extends the contract to the SIMD pack layer (pp/pack.hpp): packed
// matmul_nt/conv1d vectorize across independent output elements while each
// lane keeps the exact fixed-order accumulation of the scalar reference, so
// for a given Accum the bits are ALSO invariant to the pack width — width is
// a pure performance knob, orthogonal to the accumulation-width knob.
// pack == 0 selects the scalar reference kernels (the seed path).
#pragma once

#include <cstddef>

#include "pp/exec.hpp"
#include "sunway/dma.hpp"

namespace ap3::tensor {

/// Accumulation precision of dot-product kernels (matmul / conv). FP32 is
/// the seed behavior and the deployment mode; FP64 is the verification
/// reference the engine's ULP audit compares against (§5.2.3).
enum class Accum { kFloat32, kFloat64 };

struct Dispatch {
  pp::ExecSpace space = pp::ExecSpace::kSerial;
  std::size_t chunk = 0;  ///< 0: let the pp layer pick
  Accum accum = Accum::kFloat32;
  /// SIMD pack width for matmul_nt / conv1d: one of {1,2,4,8,16}, or 0 for
  /// the scalar reference kernels. Never changes bits (see contract above).
  /// Appended last so existing {space, chunk, accum} braced initializers
  /// keep compiling and default to the packed path.
  std::size_t pack = pp::kDefaultPackWidth;
};

/// The calling thread's active dispatch configuration.
Dispatch& dispatch();

/// RAII override of the thread's dispatch configuration.
class DispatchScope {
 public:
  explicit DispatchScope(const Dispatch& d) : saved_(dispatch()) {
    dispatch() = d;
  }
  ~DispatchScope() { dispatch() = saved_; }
  DispatchScope(const DispatchScope&) = delete;
  DispatchScope& operator=(const DispatchScope&) = delete;

 private:
  Dispatch saved_;
};

/// The DMA engine tensor kernels stage LDM panels through on kSunwayCPE
/// (process-wide; bytes/transfers also mirror into "sunway:dma:*" counters).
sunway::DmaEngine& staging_dma();

}  // namespace ap3::tensor
