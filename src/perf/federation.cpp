#include "perf/federation.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace ap3::perf {

double FederationModel::atm_seconds(const FederationConfig& config,
                                    long long nodes) const {
  const DayCost cost = base_.atm_day_sunway(config.atm, nodes, CodePath::kCpeOpt);
  return atm_a_ * cost.compute + atm_b_ * cost.comm;
}

double FederationModel::ocn_seconds(const FederationConfig& config,
                                    long long nodes) const {
  const DayCost cost = base_.ocn_day_sunway(config.ocn, nodes, CodePath::kCpeOpt);
  return ocn_a_ * cost.compute + ocn_b_ * cost.comm;
}

FederationPrediction FederationModel::predict(
    const FederationConfig& config) const {
  AP3_REQUIRE(config.atm_cluster_nodes > 0 && config.ocn_cluster_nodes > 0);
  FederationPrediction out;

  out.atm_seconds_per_day = atm_seconds(config, config.atm_cluster_nodes);
  out.ocn_seconds_per_day = ocn_seconds(config, config.ocn_cluster_nodes);

  // WAN traffic: per coupling event the boundary state crosses the link in
  // both directions. The surface exchange set is the smaller of the two
  // grids' ocean-covered surfaces.
  const double surface_points =
      std::min(static_cast<double>(config.atm.cells),
               config.ocn.horizontal_points() * 0.71);
  const double bytes_per_event =
      2.0 * config.coupling_fields * surface_points * 8.0;
  const double events =
      config.atm_couplings_per_day + config.ocn_couplings_per_day;
  out.wan_seconds_per_day =
      events * (bytes_per_event / (config.wan.bandwidth_gbs * 1e9) +
                2.0 * config.wan.latency_seconds);

  // Task-level concurrency hides the slower component behind the faster one;
  // the WAN transfers serialize with the coupling points (lagged coupling
  // hides compute, not the wire time of the exchange itself).
  const double component = std::max(out.atm_seconds_per_day,
                                    out.ocn_seconds_per_day);
  out.seconds_per_day = component + out.wan_seconds_per_day;
  out.sypd = sypd_from_seconds_per_day(out.seconds_per_day);
  out.wan_bound = out.wan_seconds_per_day > component;
  return out;
}

double FederationModel::single_machine_sypd(
    const FederationConfig& config) const {
  // Same node allocations, one machine: the slower component paces the
  // model; the on-machine coupler rearrangement is charged like the
  // fabric-local share of a federation event (no WAN term).
  const double component =
      std::max(atm_seconds(config, config.atm_cluster_nodes),
               ocn_seconds(config, config.ocn_cluster_nodes));
  const long long nodes = config.atm_cluster_nodes + config.ocn_cluster_nodes;
  const double surface_points =
      std::min(static_cast<double>(config.atm.cells),
               config.ocn.horizontal_points() * 0.71);
  const double bytes_per_event =
      2.0 * config.coupling_fields * surface_points * 8.0;
  const double bisection =
      base_.sunway_network().inter_bandwidth_gbs() * 1e9 *
      std::max(1.0, static_cast<double>(nodes) / 8.0);
  const double events =
      config.atm_couplings_per_day + config.ocn_couplings_per_day;
  const double cpl = events * (bytes_per_event / bisection + 200e-6);
  return sypd_from_seconds_per_day(component + cpl);
}

double FederationModel::breakeven_bandwidth_gbs(const FederationConfig& config,
                                                double fraction) const {
  const double target = fraction * single_machine_sypd(config);
  // An infinite link still pays latency; check feasibility first.
  FederationConfig infinite = config;
  infinite.wan.bandwidth_gbs = 1e9;
  if (predict(infinite).sypd < target) return 0.0;

  double lo = 1e-3, hi = 1e9;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = std::sqrt(lo * hi);  // bisect in log space
    FederationConfig probe = config;
    probe.wan.bandwidth_gbs = mid;
    if (predict(probe).sypd >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace ap3::perf
