#include "coupler/clock.hpp"

#include "base/error.hpp"

namespace ap3::cpl {

Clock::Clock(double start_seconds, double step_seconds)
    : start_(start_seconds), step_(step_seconds), now_(start_seconds) {
  AP3_REQUIRE_MSG(step_seconds > 0.0, "clock step must be positive");
}

int Clock::add_alarm(const std::string& name, int every_steps) {
  AP3_REQUIRE_MSG(every_steps >= 1, "alarm period must be >= 1 step");
  alarms_.push_back({name, every_steps});
  return static_cast<int>(alarms_.size()) - 1;
}

bool Clock::ringing(int alarm_id) const {
  const auto& alarm = alarms_.at(static_cast<std::size_t>(alarm_id));
  return steps_ % alarm.every_steps == 0;
}

const std::string& Clock::alarm_name(int alarm_id) const {
  return alarms_.at(static_cast<std::size_t>(alarm_id)).name;
}

void Clock::advance() {
  ++steps_;
  now_ = start_ + static_cast<double>(steps_) * step_;
}

void Clock::restore(long long steps_taken) {
  AP3_REQUIRE_MSG(steps_taken >= 0, "cannot restore clock to negative step");
  steps_ = steps_taken;
  now_ = start_ + static_cast<double>(steps_) * step_;
}

}  // namespace ap3::cpl
