
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pp/pool.cpp" "src/pp/CMakeFiles/ap3_pp.dir/pool.cpp.o" "gcc" "src/pp/CMakeFiles/ap3_pp.dir/pool.cpp.o.d"
  "/root/repo/src/pp/registry.cpp" "src/pp/CMakeFiles/ap3_pp.dir/registry.cpp.o" "gcc" "src/pp/CMakeFiles/ap3_pp.dir/registry.cpp.o.d"
  "/root/repo/src/pp/tile.cpp" "src/pp/CMakeFiles/ap3_pp.dir/tile.cpp.o" "gcc" "src/pp/CMakeFiles/ap3_pp.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
