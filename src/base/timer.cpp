#include "base/timer.hpp"

#include <algorithm>
#include <sstream>

#include "base/error.hpp"

namespace ap3 {

void TimerRegistry::absorb(const TimerStats& stats) {
  Entry& entry = entries_[stats.name];
  const bool fresh = entry.stats.calls == 0;
  entry.stats.name = stats.name;
  entry.stats.calls += stats.calls;
  entry.stats.total_seconds += stats.total_seconds;
  entry.stats.max_seconds = std::max(entry.stats.max_seconds, stats.max_seconds);
  entry.stats.min_seconds =
      fresh ? stats.min_seconds
            : std::min(entry.stats.min_seconds, stats.min_seconds);
}

double TimerRegistry::total(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.stats.total_seconds;
}

long long TimerRegistry::calls(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.stats.calls;
}

std::vector<TimerStats> TimerRegistry::snapshot() const {
  std::vector<TimerStats> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.stats);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_seconds > b.total_seconds;
  });
  return out;
}

std::string TimerRegistry::report() const {
  std::ostringstream os;
  os << "timer                                    calls      total(s)\n";
  for (const auto& [name, entry] : entries_) {
    const auto depth = std::count(name.begin(), name.end(), ':');
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    std::string label = indent + name;
    if (label.size() < 40) label.resize(40, ' ');
    os << label << ' ' << entry.stats.calls << "  " << entry.stats.total_seconds
       << "\n";
  }
  return os.str();
}

void TimerRegistry::reset() { entries_.clear(); }

TimerRegistry& TimerRegistry::global() {
  static TimerRegistry registry;
  return registry;
}

TimerStats max_across_ranks(const std::vector<TimerStats>& per_rank) {
  AP3_REQUIRE(!per_rank.empty());
  TimerStats out = per_rank.front();
  for (const TimerStats& stats : per_rank) {
    if (stats.total_seconds > out.total_seconds) out = stats;
  }
  return out;
}

}  // namespace ap3
