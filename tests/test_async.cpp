// Tests for the async execution engine: pp::Stream / pp::Event ordering and
// failure semantics, async-vs-sync bitwise determinism across execution
// spaces, the ThreadPool re-entry guard, split-phase rearrange equivalence
// under fault plans, and the coupled driver's overlap bit-exactness contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "base/error.hpp"
#include "coupler/driver.hpp"
#include "harness.hpp"
#include "mct/attrvect.hpp"
#include "mct/gsmap.hpp"
#include "mct/rearranger.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"
#include "pp/exec.hpp"
#include "pp/pool.hpp"
#include "pp/stream.hpp"

namespace {

using namespace ap3;
using ap3::testing::block_ids;
using ap3::testing::heavy_fault_plan;
using ap3::testing::run_ranks;

// --- events -----------------------------------------------------------------

TEST(Event, DefaultConstructedIsNullAndReady) {
  pp::Event event;
  EXPECT_FALSE(event.valid());
  EXPECT_TRUE(event.ready());
  EXPECT_NO_THROW(event.wait());
}

TEST(Event, WaitObservesTaskSideEffects) {
  pp::Stream stream;
  int value = 0;
  pp::Event event = stream.enqueue("set", [&] { value = 42; });
  event.wait();
  EXPECT_TRUE(event.ready());
  EXPECT_EQ(value, 42);
}

TEST(Event, DependencyOrdersAcrossStreams) {
  pp::Stream a, b;
  std::vector<int> order;
  std::mutex mutex;
  pp::Event first = a.enqueue("first", [&] {
    std::lock_guard<std::mutex> lock(mutex);
    order.push_back(1);
  });
  pp::Event second = b.enqueue(
      "second",
      [&] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(2);
      },
      {first});
  second.wait();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Event, WaitRethrowsTaskException) {
  pp::Stream stream;
  pp::Event event =
      stream.enqueue("boom", [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(event.wait(), std::runtime_error);
  EXPECT_TRUE(event.ready());  // failed counts as finished
}

TEST(Event, FailedDependencyFailsDependent) {
  pp::Stream stream;
  pp::Event bad =
      stream.enqueue("boom", [] { throw std::runtime_error("boom"); });
  bool ran = false;
  pp::Event dependent = stream.enqueue("after", [&] { ran = true; }, {bad});
  EXPECT_THROW(dependent.wait(), std::runtime_error);
  EXPECT_FALSE(ran);
}

// --- streams ----------------------------------------------------------------

TEST(Stream, TasksRunInFifoOrder) {
  pp::Stream stream;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    stream.enqueue("task", [&order, i] { order.push_back(i); });
  stream.sync();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Stream, SyncIsIdempotentAndReusable) {
  pp::Stream stream;
  int count = 0;
  stream.enqueue("a", [&] { ++count; });
  stream.sync();
  stream.sync();
  stream.enqueue("b", [&] { ++count; });
  stream.sync();
  EXPECT_EQ(count, 2);
}

TEST(Stream, DestructorQuiescesPendingTasks) {
  std::atomic<int> count{0};
  {
    pp::Stream stream;
    for (int i = 0; i < 20; ++i)
      stream.enqueue("task", [&] { ++count; });
  }
  EXPECT_EQ(count.load(), 20);
}

// --- async launches: correctness and determinism ----------------------------

std::vector<double> sync_reference(pp::ExecSpace space, std::size_t n,
                                   std::size_t chunk) {
  std::vector<double> data(n, 0.0);
  pp::RangePolicy policy = pp::RangePolicy(0, n).on(space);
  if (chunk != 0) policy = policy.chunked(chunk);
  pp::parallel_for(policy, [&](std::size_t i) {
    data[i] = std::sin(static_cast<double>(i) * 0.37) * 1.0001;
  });
  return data;
}

TEST(ParallelForAsync, BitwiseMatchesSyncAcrossSpaces) {
  const pp::ExecSpace spaces[] = {pp::ExecSpace::kSerial,
                                  pp::ExecSpace::kHostThreads,
                                  pp::ExecSpace::kSunwayCPE};
  for (pp::ExecSpace space : spaces) {
    const std::size_t n = 1000;
    const std::vector<double> expected = sync_reference(space, n, 0);
    std::vector<double> data(n, 0.0);
    pp::Stream stream;
    pp::Event done = pp::parallel_for_async(
        stream, pp::RangePolicy(0, n).on(space).named("async_fill"),
        [&](std::size_t i) {
          data[i] = std::sin(static_cast<double>(i) * 0.37) * 1.0001;
        });
    done.wait();
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(data[i], expected[i]) << "space/index " << i;
  }
}

TEST(ParallelReduceAsync, BitwiseMatchesSyncAcrossSpacesAndChunks) {
  // Ill-conditioned summands make any partial-combination reordering visible
  // in the low bits; equality here is the determinism contract, not luck.
  const auto term = [](std::size_t i) {
    return std::sin(static_cast<double>(i) * 1.7) * 1e8 +
           1e-8 / (1.0 + static_cast<double>(i));
  };
  const pp::ExecSpace spaces[] = {pp::ExecSpace::kSerial,
                                  pp::ExecSpace::kHostThreads,
                                  pp::ExecSpace::kSunwayCPE};
  const std::size_t chunks[] = {0, 7, 64, 1000};
  for (pp::ExecSpace space : spaces) {
    for (std::size_t chunk : chunks) {
      pp::RangePolicy policy = pp::RangePolicy(0, 1000).on(space);
      if (chunk != 0) policy = policy.chunked(chunk);
      const double expected = pp::parallel_reduce(
          policy, [&](std::size_t i, double& acc) { acc += term(i); }, 0.0);
      pp::Stream stream;
      pp::AsyncResult<double> result = pp::parallel_reduce_async(
          stream, policy, [&](std::size_t i, double& acc) { acc += term(i); },
          0.0);
      EXPECT_EQ(result.get(), expected);  // bitwise
    }
  }
}

TEST(ParallelForAsync, ChargesCpeCyclesToEnqueuersBuffer) {
  obs::set_enabled(true);
  obs::reset_all();
  const double before = obs::local().counter("pp:cpe:sim_cycles");
  pp::Stream stream;
  pp::parallel_for_async(stream,
                         pp::RangePolicy(0, 130).on(pp::ExecSpace::kSunwayCPE),
                         [](std::size_t) {})
      .wait();
  // ceil(130 / 64 CPEs) = 3 simulated cycles, attributed to this thread's
  // buffer (the enqueue site), not the anonymous pool worker.
  EXPECT_DOUBLE_EQ(obs::local().counter("pp:cpe:sim_cycles") - before, 3.0);
  obs::reset_all();
}

// --- thread-pool re-entry guard ---------------------------------------------

TEST(ThreadPool, RunChunksReentryFromPoolThreadIsHardError) {
  pp::Stream stream;
  pp::Event event = stream.enqueue("reenter", [] {
    pp::ThreadPool::global().run_chunks(2, [](std::size_t) {});
  });
  EXPECT_THROW(event.wait(), ap3::Error);
}

TEST(ThreadPool, NestedAsyncLaunchInlinesInsteadOfThrowing) {
  // parallel_for from a pool thread must not hit the re-entry guard: the
  // dispatch layer checks on_pool_thread() and inlines chunk-serially.
  pp::Stream stream;
  std::vector<double> data(256, 0.0);
  pp::Event done = stream.enqueue("nested", [&] {
    pp::parallel_for(
        pp::RangePolicy(0, data.size()).on(pp::ExecSpace::kHostThreads),
        [&](std::size_t i) { data[i] = static_cast<double>(i); });
  });
  EXPECT_NO_THROW(done.wait());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], static_cast<double>(i));
}

TEST(ThreadPool, ChunkExceptionPropagatesToCaller) {
  EXPECT_THROW(
      pp::parallel_for(
          pp::RangePolicy(0, 1000).on(pp::ExecSpace::kHostThreads).chunked(10),
          [](std::size_t i) {
            if (i == 617) throw std::runtime_error("chunk failure");
          }),
      std::runtime_error);
  // The pool must be usable again after an aborted gang.
  double sum = pp::parallel_reduce(
      pp::RangePolicy(0, 100).on(pp::ExecSpace::kHostThreads),
      [](std::size_t, double& acc) { acc += 1.0; }, 0.0);
  EXPECT_DOUBLE_EQ(sum, 100.0);
}

// --- split-phase rearrange --------------------------------------------------

void run_split_phase_equivalence(const std::optional<fault::FaultConfig>& plan) {
  const auto body = [](par::Comm& comm) {
    const std::int64_t n = 48;
    const int nranks = comm.size();
    std::vector<std::vector<std::int64_t>> src_ids(
        static_cast<size_t>(nranks)),
        dst_ids(static_cast<size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      src_ids[static_cast<size_t>(r)] = block_ids(n, r, nranks);
    for (std::int64_t g = 0; g < n; ++g)
      dst_ids[static_cast<size_t>((g * 5) % nranks)].push_back(g);
    const mct::GlobalSegMap src_map = mct::GlobalSegMap::from_all(src_ids);
    const mct::GlobalSegMap dst_map = mct::GlobalSegMap::from_all(dst_ids);
    mct::Rearranger rearranger(
        comm, mct::Router::build(comm.rank(), src_map, dst_map));

    mct::AttrVect src({"u", "v"},
                      static_cast<size_t>(src_map.local_size(comm.rank())));
    const auto my_src = src_map.local_ids(comm.rank());
    for (size_t k = 0; k < my_src.size(); ++k) {
      src.field("u")[k] = std::cos(static_cast<double>(my_src[k]) * 0.311);
      src.field("v")[k] = static_cast<double>(my_src[k]) * 1.5 - 7.0;
    }

    mct::AttrVect via_collective(
        {"u", "v"}, static_cast<size_t>(dst_map.local_size(comm.rank())));
    mct::AttrVect via_split(
        {"u", "v"}, static_cast<size_t>(dst_map.local_size(comm.rank())));
    rearranger.rearrange(src, via_collective, mct::Strategy::kAlltoallv);
    mct::Rearranger::Pending pending =
        rearranger.rearrange_begin(src, via_split);
    EXPECT_TRUE(pending.active());
    rearranger.rearrange_end(pending);
    EXPECT_FALSE(pending.active());
    for (const char* name : {"u", "v"})
      for (size_t k = 0; k < via_split.num_points(); ++k)
        EXPECT_EQ(via_split.field(name)[k], via_collective.field(name)[k]);
  };
  if (plan)
    run_ranks(3, *plan, body);
  else
    run_ranks(3, body);
}

TEST(SplitPhase, MatchesCollectiveFaultFree) {
  run_split_phase_equivalence(std::nullopt);
}

TEST(SplitPhase, MatchesCollectiveUnderHeavyFaults) {
  run_split_phase_equivalence(heavy_fault_plan(0x5eedULL));
}

TEST(SplitPhase, EndWithoutBeginIsHardError) {
  run_ranks(1, [](par::Comm& comm) {
    const mct::GlobalSegMap map = mct::GlobalSegMap::from_all({{0, 1}});
    mct::Rearranger rearranger(comm, mct::Router::build(0, map, map));
    mct::Rearranger::Pending pending;
    EXPECT_FALSE(pending.active());
    EXPECT_THROW(rearranger.rearrange_end(pending), ap3::Error);
  });
}

// --- coupled overlap bit-exactness ------------------------------------------

cpl::CoupledConfig overlap_test_config(bool overlap) {
  cpl::CoupledConfig config;
  config.atm.mesh_n = 5;  // 500 cells
  config.atm.nlev = 6;
  config.ocn.grid = grid::TripolarConfig{40, 30, 6};
  config.ocn_couple_ratio = 5;
  config.overlap = overlap;
  return config;
}

std::uint64_t coupled_hash(bool overlap,
                           const std::optional<fault::FaultConfig>& plan) {
  std::atomic<std::uint64_t> hash{0};
  const auto body = [&](par::Comm& comm) {
    cpl::CoupledModel model(comm, overlap_test_config(overlap));
    // One full ocean coupling cycle plus a window, so both phases run with
    // every exchange (i2o, o2i, accumulation, SST return) exercised.
    model.run_windows(overlap_test_config(overlap).ocn_couple_ratio + 1);
    const std::uint64_t h = model.state_hash();  // collective, equal on ranks
    if (comm.rank() == 0) hash = h;
  };
  if (plan)
    run_ranks(3, *plan, body);
  else
    run_ranks(3, body);
  return hash.load();
}

TEST(Overlap, CoupledStateBitExactFaultFree) {
  EXPECT_EQ(coupled_hash(false, std::nullopt), coupled_hash(true, std::nullopt));
}

TEST(Overlap, CoupledStateBitExactUnderHeavyFaults) {
  const fault::FaultConfig plan = heavy_fault_plan(0xc0f3ULL);
  EXPECT_EQ(coupled_hash(false, plan), coupled_hash(true, plan));
}

}  // namespace
