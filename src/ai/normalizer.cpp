#include "ai/normalizer.hpp"

#include <cmath>

#include "base/error.hpp"

namespace ap3::ai {

ChannelNormalizer ChannelNormalizer::fit(const tensor::Tensor& data) {
  AP3_REQUIRE(data.rank() == 3);
  const std::size_t n = data.dim(0), c = data.dim(1), l = data.dim(2);
  AP3_REQUIRE(n > 0);
  ChannelNormalizer out;
  out.flat_ = false;
  out.means_.assign(c, 0.0f);
  out.stds_.assign(c, 1.0f);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < l; ++k) {
        const double v = data.at3(i, ch, k);
        sum += v;
        sum2 += v * v;
      }
    const double count = static_cast<double>(n * l);
    const double mean = sum / count;
    const double var = sum2 / count - mean * mean;
    out.means_[ch] = static_cast<float>(mean);
    // Guard relative to the channel magnitude: a (near-)constant channel of
    // 1e5 Pa must not normalize off-sample values by std=1.
    const double scale = std::max(std::abs(mean), 1.0);
    const double std_dev = var > 0.0 ? std::sqrt(var) : 0.0;
    out.stds_[ch] = static_cast<float>(std_dev > 1e-6 * scale ? std_dev : scale);
  }
  return out;
}

ChannelNormalizer ChannelNormalizer::fit_flat(const tensor::Tensor& data) {
  AP3_REQUIRE(data.rank() == 2);
  const std::size_t n = data.dim(0), f = data.dim(1);
  AP3_REQUIRE(n > 0);
  ChannelNormalizer out;
  out.flat_ = true;
  out.means_.assign(f, 0.0f);
  out.stds_.assign(f, 1.0f);
  for (std::size_t j = 0; j < f; ++j) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.at2(i, j);
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = sum2 / static_cast<double>(n) - mean * mean;
    out.means_[j] = static_cast<float>(mean);
    const double scale = std::max(std::abs(mean), 1.0);
    const double std_dev = var > 0.0 ? std::sqrt(var) : 0.0;
    out.stds_[j] = static_cast<float>(std_dev > 1e-6 * scale ? std_dev : scale);
  }
  return out;
}

void ChannelNormalizer::apply(tensor::Tensor& data) const {
  if (flat_) {
    AP3_REQUIRE(data.rank() == 2 && data.dim(1) == means_.size());
    for (std::size_t i = 0; i < data.dim(0); ++i)
      for (std::size_t j = 0; j < means_.size(); ++j)
        data.at2(i, j) = (data.at2(i, j) - means_[j]) / stds_[j];
    return;
  }
  AP3_REQUIRE(data.rank() == 3 && data.dim(1) == means_.size());
  for (std::size_t i = 0; i < data.dim(0); ++i)
    for (std::size_t c = 0; c < means_.size(); ++c)
      for (std::size_t k = 0; k < data.dim(2); ++k)
        data.at3(i, c, k) = (data.at3(i, c, k) - means_[c]) / stds_[c];
}

void ChannelNormalizer::invert(tensor::Tensor& data) const {
  if (flat_) {
    AP3_REQUIRE(data.rank() == 2 && data.dim(1) == means_.size());
    for (std::size_t i = 0; i < data.dim(0); ++i)
      for (std::size_t j = 0; j < means_.size(); ++j)
        data.at2(i, j) = data.at2(i, j) * stds_[j] + means_[j];
    return;
  }
  AP3_REQUIRE(data.rank() == 3 && data.dim(1) == means_.size());
  for (std::size_t i = 0; i < data.dim(0); ++i)
    for (std::size_t c = 0; c < means_.size(); ++c)
      for (std::size_t k = 0; k < data.dim(2); ++k)
        data.at3(i, c, k) = data.at3(i, c, k) * stds_[c] + means_[c];
}

}  // namespace ap3::ai
