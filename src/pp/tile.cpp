#include "pp/tile.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace ap3::pp {

void TileProfiler::record(const std::string& kernel, TileShape shape,
                          double seconds) {
  TileRecord& rec = data_[kernel][shape];
  rec.shape = shape;
  rec.seconds += seconds;
  rec.samples += 1;
}

TileShape TileProfiler::best(const std::string& kernel) const {
  auto it = data_.find(kernel);
  AP3_REQUIRE_MSG(it != data_.end() && !it->second.empty(),
                  "no tile records for kernel '" << kernel << "'");
  const TileRecord* best = nullptr;
  double best_mean = 0.0;
  for (const auto& [shape, rec] : it->second) {
    const double mean = rec.seconds / rec.samples;
    if (!best || mean < best_mean) {
      best = &rec;
      best_mean = mean;
    }
  }
  return best->shape;
}

std::vector<TileRecord> TileProfiler::records(const std::string& kernel) const {
  std::vector<TileRecord> out;
  auto it = data_.find(kernel);
  if (it == data_.end()) return out;
  for (const auto& [shape, rec] : it->second) out.push_back(rec);
  std::sort(out.begin(), out.end(), [](const TileRecord& a, const TileRecord& b) {
    return a.seconds / a.samples < b.seconds / b.samples;
  });
  return out;
}

TileProfiler& TileProfiler::global() {
  static TileProfiler profiler;
  return profiler;
}

}  // namespace ap3::pp
