# Empty dependencies file for ap3_par.
# This may be replaced when dependencies are built.
