// Tests for the GRIST-mini atmosphere: dycore invariants (mass/tracer
// conservation, stability, geostrophic response), sub-stepping ratios,
// conventional physics behaviour, AI-suite integration through the
// physics–dynamics interface, vortex seeding/tracking, and the MCT-style
// export/import contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "atm/model.hpp"
#include "pp/swgomp.hpp"
#include "atm/physics.hpp"
#include "atm/vortex.hpp"
#include "base/constants.hpp"
#include "obs/obs.hpp"
#include "par/comm.hpp"

namespace {

using namespace ap3;
using namespace ap3::atm;

AtmConfig small_config() {
  AtmConfig config;
  config.mesh_n = 6;  // 720 cells
  config.nlev = 8;
  return config;
}

TEST(AtmConfig, SubstepRatiosMatchPaper) {
  const AtmConfig config;
  // §6.1: dycore 8 s, tracer 30 s, model 120 s — ratios 15 and 4.
  EXPECT_EQ(config.dycore_substeps, 15);
  EXPECT_EQ(config.tracer_substeps, 4);
  EXPECT_NEAR(config.model_dt_seconds() / config.dycore_dt_seconds(), 15.0,
              1e-9);
}

TEST(AtmConfig, DtScalesWithResolution) {
  AtmConfig coarse;
  coarse.mesh_n = 4;
  AtmConfig fine;
  fine.mesh_n = 8;
  EXPECT_NEAR(coarse.dycore_dt_seconds() / fine.dycore_dt_seconds(), 2.0, 1e-9);
}

TEST(Dycore, MassConservedAcrossRanksToRoundoff) {
  par::run(4, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    seed_vortex(dycore, VortexSpec{});  // non-trivial flow
    const double mass0 = dycore.total_mass();
    for (int i = 0; i < 30; ++i) dycore.step_dynamics(config.dycore_dt_seconds());
    const double mass1 = dycore.total_mass();
    EXPECT_NEAR(mass1 / mass0, 1.0, 1e-12);
  });
}

TEST(Dycore, ConstantTracerStaysConstant) {
  par::run(2, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    // Overwrite tracers with constants; advective form must preserve them.
    for (double& t : dycore.state().temp) t = 273.0;
    for (double& q : dycore.state().q) q = 0.004;
    seed_vortex(dycore, VortexSpec{});
    for (int i = 0; i < 5; ++i) {
      dycore.step_dynamics(config.dycore_dt_seconds());
      dycore.step_tracers(config.tracer_dt_seconds());
    }
    for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
      EXPECT_NEAR(dycore.state().temp[dycore.state().tq(c, 0)], 273.0, 1e-9);
      EXPECT_NEAR(dycore.state().q[dycore.state().tq(c, 3)], 0.004, 1e-12);
    }
  });
}

TEST(Dycore, RestStateStaysAtRest) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    for (int i = 0; i < 20; ++i) dycore.step_dynamics(config.dycore_dt_seconds());
    EXPECT_LT(dycore.max_wind(), 1e-10);
    EXPECT_LT(dycore.max_h_deviation(), 1e-10);
  });
}

TEST(Dycore, GravityWaveStaysStableAndBounded) {
  par::run(2, [](par::Comm& comm) {
    AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    VortexSpec bump;
    bump.depression_m = 40.0;
    bump.max_wind_ms = 0.0;  // pure height perturbation
    seed_vortex(dycore, bump);
    for (int i = 0; i < 200; ++i) dycore.step_dynamics(config.dycore_dt_seconds());
    EXPECT_LT(dycore.max_h_deviation(), 80.0);  // no blow-up
    EXPECT_LT(dycore.max_wind(), 30.0);
    EXPECT_TRUE(std::isfinite(dycore.max_wind()));
  });
}

TEST(Dycore, SerialAndParallelBitwiseIdentical) {
  // Bit-for-bit validation across decompositions — the paper's correctness
  // criterion for the coupled engineering work.
  const AtmConfig config = small_config();
  std::vector<double> h_serial, h_par;
  par::run(1, [&](par::Comm& comm) {
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    seed_vortex(dycore, VortexSpec{});
    for (int i = 0; i < 10; ++i) dycore.step_dynamics(config.dycore_dt_seconds());
    h_serial.assign(dycore.state().h.begin(),
                    dycore.state().h.begin() +
                        static_cast<std::ptrdiff_t>(dycore.mesh().num_owned()));
  });
  static std::vector<double> collected;
  static std::mutex mutex;
  collected.assign(20 * 6 * 6, 0.0);
  par::run(3, [&](par::Comm& comm) {
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    seed_vortex(dycore, VortexSpec{});
    for (int i = 0; i < 10; ++i) dycore.step_dynamics(config.dycore_dt_seconds());
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c)
      collected[static_cast<std::size_t>(dycore.mesh().global_id(c))] =
          dycore.state().h[c];
  });
  ASSERT_EQ(h_serial.size(), collected.size());
  for (std::size_t c = 0; c < h_serial.size(); ++c)
    EXPECT_EQ(h_serial[c], collected[c]) << "cell " << c;
}

TEST(Physics, ConventionalCondensesSupersaturation) {
  ConventionalPhysics physics;
  ColumnBatch batch(1, 8);
  for (std::size_t k = 0; k < 8; ++k) {
    batch.temp[k] = 280.0;
    batch.q[k] = 0.05;  // far above qsat(280) ~ 0.0087
  }
  physics.compute(batch);
  EXPECT_GT(batch.precip[0], 0.0);
  // Condensation dries and warms.
  EXPECT_LT(batch.dq[4], 0.0);
  EXPECT_GT(batch.dtemp[4], 0.0);
}

TEST(Physics, ConvectiveAdjustmentRemovesInstability) {
  ConventionalPhysics physics;
  ColumnBatch batch(1, 4);
  batch.q.assign(4, 0.0);
  batch.temp = {200.0, 230.0, 260.0, 295.0};  // super-adiabatic stack
  physics.compute(batch);
  // Heat moves from the lower member of each unstable pair to the upper.
  EXPECT_GT(batch.dtemp[0], 0.0);
  EXPECT_LT(batch.dtemp[3], 0.0);
}

TEST(Physics, RadiationRespondsToSun) {
  ConventionalPhysics physics;
  ColumnBatch day(1, 8), night(1, 8);
  day.coszr[0] = 1.0;
  night.coszr[0] = 0.0;
  physics.compute(day);
  physics.compute(night);
  EXPECT_GT(day.gsw[0], 300.0);
  EXPECT_EQ(night.gsw[0], 0.0);
  EXPECT_GT(night.glw[0], 100.0);  // longwave continues at night
}

TEST(Physics, QsatIncreasesWithTemperature) {
  ConventionalPhysics physics;
  EXPECT_GT(physics.qsat(300.0), physics.qsat(280.0));
  EXPECT_GT(physics.qsat(280.0), physics.qsat(250.0));
}

TEST(Physics, TrainedAiSuiteApproximatesConventional) {
  // End-to-end §5.2.1 pipeline: generate conventional-physics truth, train
  // the AI suite with the paper's split, verify skill, then run it behind
  // the physics–dynamics interface.
  ConventionalPhysics conventional;
  const std::size_t nlev = 10;
  const TrainingData data = generate_training_data(conventional, 16, 8, nlev, 7);

  ai::SuiteConfig config;
  config.levels = static_cast<int>(nlev);
  config.cnn_hidden = 12;
  config.mlp_hidden = 32;
  const TrainedSuite trained = train_ai_physics(data, config, 12, 3e-3f);
  EXPECT_GT(trained.tendency_r2, 0.25f);
  EXPECT_GT(trained.flux_r2, 0.6f);

  // Inference through the interface on fresh columns.
  AiPhysics ai_physics(trained.suite);
  ColumnBatch batch(4, nlev);
  for (std::size_t c = 0; c < 4; ++c) {
    batch.tskin[c] = 290.0;
    batch.coszr[c] = 0.6;
    for (std::size_t k = 0; k < nlev; ++k) {
      const double depth = (k + 1.0) / static_cast<double>(nlev);
      batch.temp[batch.at(c, k)] = 215.0 + 75.0 * depth;
      batch.q[batch.at(c, k)] = 0.01 * depth;
      batch.pressure[batch.at(c, k)] = 1e5 * depth;
    }
  }
  ai_physics.compute(batch);
  // Fluxes must come out in physical magnitudes.
  EXPECT_GT(batch.gsw[0], 50.0);
  EXPECT_LT(batch.gsw[0], 1400.0);
  EXPECT_GT(batch.glw[0], 100.0);
  for (double v : batch.dtemp) EXPECT_TRUE(std::isfinite(v));
}

TEST(Vortex, SeedCreatesDepressionAndCyclone) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    VortexSpec spec;
    spec.lon_deg = 130.0;
    spec.lat_deg = 18.0;
    seed_vortex(dycore, spec);
    const VortexFix fix = track_vortex(dycore, comm, 130.0, 18.0, 1500.0);
    ASSERT_TRUE(fix.found);
    EXPECT_LT(fix.min_h_m, config.mean_depth_m - 10.0);
    EXPECT_GT(fix.max_wind_ms, 10.0);
    EXPECT_NEAR(fix.lon_deg, 130.0, 15.0);
    EXPECT_NEAR(fix.lat_deg, 18.0, 15.0);
  });
}

TEST(Vortex, NorthernHemisphereIsCyclonic) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    Dycore dycore(comm, config, mesh);
    VortexSpec spec;
    spec.lon_deg = 140.0;
    spec.lat_deg = 20.0;
    seed_vortex(dycore, spec);
    // Positive relative vorticity at the core in the NH.
    const auto vorticity = dycore.relative_vorticity();
    double core_vort = 0.0;
    double best = 1e300;
    for (std::size_t c = 0; c < dycore.mesh().num_owned(); ++c) {
      const double d = track_distance_km(
          140.0, 20.0, dycore.mesh().lon_rad(c) * constants::kRadToDeg,
          dycore.mesh().lat_rad(c) * constants::kRadToDeg);
      if (d < best) {
        best = d;
        core_vort = vorticity[c];
      }
    }
    EXPECT_GT(core_vort, 0.0);
  });
}

TEST(Vortex, IntensityCategoriesMonotone) {
  EXPECT_EQ(intensity_category(20.0), 0);
  EXPECT_EQ(intensity_category(35.0), 1);
  EXPECT_EQ(intensity_category(75.0), 5);
  for (double w = 10.0; w < 80.0; w += 5.0)
    EXPECT_LE(intensity_category(w), intensity_category(w + 5.0));
}

TEST(Model, RunAdvancesWholeSteps) {
  par::run(2, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    AtmModel model(comm, config, mesh);
    const double dt = config.model_dt_seconds();
    model.run(0.0, 3.0 * dt);
    EXPECT_EQ(model.model_steps(), 3);
    EXPECT_THROW(model.run(0.0, 1.5 * dt), ap3::Error);
  });
}

TEST(Model, ExportImportContract) {
  par::run(2, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    AtmModel model(comm, config, mesh);
    model.run(0.0, config.model_dt_seconds());

    mct::AttrVect a2x(AtmModel::export_fields(),
                      model.dycore().mesh().num_owned());
    model.export_state(a2x);
    // Physical sanity of exported fields.
    for (double ps : a2x.field("ps")) {
      EXPECT_GT(ps, 5.0e4);
      EXPECT_LT(ps, 1.5e5);
    }
    for (double t : a2x.field("tbot")) {
      EXPECT_GT(t, 180.0);
      EXPECT_LT(t, 340.0);
    }

    // Import warms ocean cells.
    mct::AttrVect x2a(AtmModel::import_fields(),
                      model.dycore().mesh().num_owned());
    for (auto& sst : x2a.field("sst")) sst = 305.0;
    model.import_state(x2a);
    bool any_ocean = false;
    for (std::size_t c = 0; c < model.dycore().mesh().num_owned(); ++c) {
      if (!model.is_land(c)) {
        any_ocean = true;
        model.run(config.model_dt_seconds(), config.model_dt_seconds());
        EXPECT_NEAR(model.tskin(c), 305.0, 1e-9);
        break;
      }
    }
    (void)any_ocean;
  });
}

TEST(Model, SstImportRejectsSentinelsAndClampsToPhysicalRange) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    AtmModel model(comm, config, mesh);
    const std::size_t n = model.dycore().mesh().num_owned();
    std::size_t ocean = n;
    for (std::size_t c = 0; c < n; ++c)
      if (!model.is_land(c)) {
        ocean = c;
        break;
      }
    ASSERT_LT(ocean, n);

    mct::AttrVect x2a(AtmModel::import_fields(), n);
    for (auto& s : x2a.field("sst")) s = 300.0;
    model.import_state(x2a);
    EXPECT_DOUBLE_EQ(model.sst(ocean), 300.0);

    const double rejected_before =
        obs::local().counter("atm:import:sst_rejected");

    // A fill-value sentinel (unmapped source cell) must not overwrite the
    // cached SST — the old code left sst_ stale silently; now it is counted.
    x2a.field("sst")[ocean] = 150.0;
    model.import_state(x2a);
    EXPECT_DOUBLE_EQ(model.sst(ocean), 300.0);
    EXPECT_GT(obs::local().counter("atm:import:sst_rejected"),
              rejected_before);

    // Cold-but-real values clamp to the seawater freezing point...
    x2a.field("sst")[ocean] = 250.0;
    model.import_state(x2a);
    EXPECT_DOUBLE_EQ(model.sst(ocean),
                     constants::kSeawaterFreeze + constants::kT0);

    // ...and hot outliers clamp to the upper physical bound.
    x2a.field("sst")[ocean] = 400.0;
    model.import_state(x2a);
    EXPECT_DOUBLE_EQ(model.sst(ocean), 320.0);
  });
}

TEST(Model, LandAndOceanCellsBothExist) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    AtmModel model(comm, config, mesh);
    std::size_t land = 0, ocean = 0;
    for (std::size_t c = 0; c < model.dycore().mesh().num_owned(); ++c)
      (model.is_land(c) ? land : ocean)++;
    EXPECT_GT(land, 0u);
    EXPECT_GT(ocean, 0u);
    EXPECT_GT(ocean, land);  // ~71 % ocean
  });
}

TEST(Model, CosZenithDayNightCycle) {
  par::run(1, [](par::Comm& comm) {
    const AtmConfig config = small_config();
    grid::IcosahedralGrid mesh(config.mesh_n);
    AtmModel model(comm, config, mesh);
    // Over a full day, every cell must see both day and night.
    for (std::size_t c = 0; c < 5; ++c) {
      double max_mu = 0.0, min_mu = 1.0;
      for (int hour = 0; hour < 24; ++hour) {
        const double mu = model.cos_zenith(c, hour * 3600.0);
        max_mu = std::max(max_mu, mu);
        min_mu = std::min(min_mu, mu);
      }
      EXPECT_GT(max_mu, 0.05);
      EXPECT_EQ(min_mu, 0.0);
    }
  });
}

TEST(Dycore, SwgompOffloadBitwiseIdentical) {
  // §5.1.1: GRIST's conflict-free loops offloaded through the SWGOMP layer
  // must be bitwise identical to the serial path, with regions counted.
  const AtmConfig base = small_config();
  auto run_case = [&](bool offload) {
    static std::vector<double> h;
    par::run(1, [&](par::Comm& comm) {
      AtmConfig config = base;
      config.use_swgomp = offload;
      grid::IcosahedralGrid mesh(config.mesh_n);
      Dycore dycore(comm, config, mesh);
      seed_vortex(dycore, VortexSpec{});
      for (int i = 0; i < 20; ++i) {
        dycore.step_dynamics(config.dycore_dt_seconds());
        dycore.step_tracers(config.tracer_dt_seconds());
      }
      h = dycore.state().h;
    });
    return h;
  };
  pp::swgomp::reset_stats();
  const std::vector<double> serial = run_case(false);
  EXPECT_EQ(pp::swgomp::stats().regions, 0u);
  const std::vector<double> offloaded = run_case(true);
  EXPECT_GT(pp::swgomp::stats().regions, 0u);  // regions really offloaded
  ASSERT_EQ(serial.size(), offloaded.size());
  for (std::size_t c = 0; c < serial.size(); ++c)
    EXPECT_EQ(serial[c], offloaded[c]);
}

TEST(Model, MixedPrecisionStaysWithinGristThreshold) {
  // §5.2.3 acceptance: relative L2 of surface pressure under the mixed
  // dycore must stay below 5 %.
  const AtmConfig base = small_config();
  std::vector<double> ps_fp64, ps_mixed;
  par::run(1, [&](par::Comm& comm) {
    grid::IcosahedralGrid mesh(base.mesh_n);
    Dycore dycore(comm, base, mesh);
    seed_vortex(dycore, VortexSpec{});
    for (int i = 0; i < 50; ++i) dycore.step_dynamics(base.dycore_dt_seconds());
    ps_fp64 = dycore.state().h;
  });
  AtmConfig mixed = base;
  mixed.mixed_precision = true;
  par::run(1, [&](par::Comm& comm) {
    grid::IcosahedralGrid mesh(mixed.mesh_n);
    Dycore dycore(comm, mixed, mesh);
    seed_vortex(dycore, VortexSpec{});
    for (int i = 0; i < 50; ++i) dycore.step_dynamics(mixed.dycore_dt_seconds());
    ps_mixed = dycore.state().h;
  });
  double num = 0.0, den = 0.0;
  for (std::size_t c = 0; c < ps_fp64.size(); ++c) {
    num += (ps_mixed[c] - ps_fp64[c]) * (ps_mixed[c] - ps_fp64[c]);
    den += ps_fp64[c] * ps_fp64[c];
  }
  EXPECT_LT(std::sqrt(num / den), 0.05);
  EXPECT_GT(num, 0.0);  // mixed precision is actually engaged
}

}  // namespace
