file(REMOVE_RECURSE
  "../bench/bench_nonocean_exclusion"
  "../bench/bench_nonocean_exclusion.pdb"
  "CMakeFiles/bench_nonocean_exclusion.dir/bench_nonocean_exclusion.cpp.o"
  "CMakeFiles/bench_nonocean_exclusion.dir/bench_nonocean_exclusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonocean_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
