#include "io/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace ap3::io {

namespace {

constexpr char kMagic[8] = {'A', 'P', '3', 'C', 'K', 'P', 'T', '\0'};

std::uint64_t fnv1a(const std::vector<char>& bytes, std::size_t count) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void put(std::vector<char>& out, const T& value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

void put_string(std::vector<char>& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor over the manifest blob; short reads (a truncated
/// file) surface as ap3::Error, never as out-of-bounds access.
struct Cursor {
  const std::vector<char>& bytes;
  std::size_t at = 0;

  template <typename T>
  T get() {
    AP3_REQUIRE_MSG(at + sizeof(T) <= bytes.size(),
                    "checkpoint manifest truncated");
    T value;
    std::memcpy(&value, bytes.data() + at, sizeof(T));
    at += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    AP3_REQUIRE_MSG(at + n <= bytes.size(), "checkpoint manifest truncated");
    std::string s(bytes.data() + at, n);
    at += n;
    return s;
  }
};

std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST.bin";
}

std::string manifest_tmp_path(const std::string& dir) {
  return manifest_path(dir) + ".tmp";
}

}  // namespace

FieldData local_field(const std::vector<double>& values) {
  FieldData out;
  out.values = values;
  out.ids.resize(values.size());
  for (std::size_t i = 0; i < out.ids.size(); ++i)
    out.ids[i] = static_cast<std::int64_t>(i);
  return out;
}

FieldData rank_scalar(int rank, double value) {
  return {{rank}, {value}};
}

const std::vector<double>& section_values(const std::vector<Section>& sections,
                                          const std::string& name,
                                          std::size_t expected_size) {
  for (const Section& s : sections) {
    if (s.name != name) continue;
    AP3_REQUIRE_MSG(s.data.values.size() == expected_size,
                    "restore section '" << name << "' has "
                                        << s.data.values.size()
                                        << " values, expected "
                                        << expected_size);
    return s.data.values;
  }
  throw Error("restore is missing section '" + name + "'");
}

CheckpointWriter::CheckpointWriter(const par::Comm& comm, std::string dir,
                                   CheckpointOptions options)
    : comm_(comm), dir_(std::move(dir)), options_(options) {
  AP3_REQUIRE(options_.num_subfiles >= 1);
  if (comm_.rank() == 0) {
    std::filesystem::create_directories(dir_);
    // Invalidate before mutate: once any section of a reused directory is
    // rewritten, the old manifest's completeness claim is a lie — a crash
    // would leave a torn old/new section mix that passes every per-file
    // checksum. Remove the manifest (and a stale tmp) first, so the stale
    // snapshot reads as "no snapshot" instead of "corrupt snapshot".
    std::filesystem::remove(manifest_path(dir_));
    std::filesystem::remove(manifest_tmp_path(dir_));
  }
  comm_.barrier();  // no rank writes a section before the directory exists
                    // and the old manifest is gone
  if (options_.async) stream_ = std::make_unique<pp::Stream>();
}

CheckpointWriter::~CheckpointWriter() {
  // Local drain only (no collectives — the peer ranks may be unwinding an
  // exception). Write errors are swallowed: an unfinalized snapshot has no
  // manifest, so nothing vouches for the half-written sections.
  for (const PendingWrite& pending : pending_) {
    try {
      pending.event.wait();
    } catch (...) {
    }
  }
}

void CheckpointWriter::add_section(const std::string& name,
                                   const FieldData& local) {
  add_section(name, local, options_.codec);
}

void CheckpointWriter::add_section(const std::string& name,
                                   const FieldData& local,
                                   const CodecSpec& spec) {
  AP3_REQUIRE_MSG(!finalized_, "add_section after finalize");
  AP3_REQUIRE_MSG(!name.empty() && name.find('/') == std::string::npos,
                  "bad section name '" << name << "'");
  AP3_REQUIRE_MSG(
      std::find_if(sections_.begin(), sections_.end(),
                   [&](const auto& s) { return s.first == name; }) ==
          sections_.end(),
      "duplicate checkpoint section '" << name << "'");
  record_section_write(name, local, spec);
  sections_.emplace_back(name, spec.codec);
}

void CheckpointWriter::record_section_write(const std::string& name,
                                            const FieldData& local,
                                            const CodecSpec& spec) {
  SubfileConfig config{dir_ + "/" + name, options_.num_subfiles, spec,
                       options_.slow_disk_seconds_per_mb};
  // The gather is collective and must run here, on the rank thread; only
  // the pure-local encode+write may move to the pool.
  auto gathered = gather_subfiles(comm_, config, local);
  if (!options_.async) {
    if (gathered && deferred_error_.empty()) {
      try {
        const std::size_t bytes = write_gathered(
            *gathered, spec, options_.slow_disk_seconds_per_mb);
        bytes_written_ += bytes;
        obs::counter_add("io:subfile:bytes_written",
                         static_cast<double>(bytes));
      } catch (const std::exception& e) {
        deferred_error_ = e.what();
      }
    }
    return;
  }
  if (!gathered) return;
  auto record = std::make_shared<GatheredSubfile>(std::move(*gathered));
  auto bytes = std::make_shared<std::size_t>(0);
  pp::Event event = stream_->enqueue(
      "io:ckpt:write:" + name,
      [record, bytes, spec, slow = options_.slow_disk_seconds_per_mb] {
        AP3_SPAN("io:subfile:write_async");
        *bytes = write_gathered(*record, spec, slow);
        obs::counter_add("io:subfile:bytes_written",
                         static_cast<double>(*bytes));
      });
  pending_.push_back({std::move(event), std::move(bytes)});
}

void CheckpointWriter::set_scalar(const std::string& name, double value) {
  AP3_REQUIRE_MSG(!finalized_, "set_scalar after finalize");
  scalars_[name] = value;
}

bool CheckpointWriter::writes_complete() const {
  for (const PendingWrite& pending : pending_)
    if (!pending.event.ready()) return false;
  return true;
}

void CheckpointWriter::wait() {
  AP3_SPAN("io:ckpt:wait");
  for (PendingWrite& pending : pending_) {
    try {
      pending.event.wait();
      bytes_written_ += *pending.bytes;
    } catch (const std::exception& e) {
      if (deferred_error_.empty()) deferred_error_ = e.what();
    }
  }
  pending_.clear();
  // Fold the per-rank failure flags so a disk error (or ULP-bound breach)
  // on one aggregator throws on EVERY rank — the healthy ranks must not
  // march on into collectives their peer will never join.
  const double any_failed = comm_.allreduce_value(
      deferred_error_.empty() ? 0.0 : 1.0, par::ReduceOp::kMax);
  if (any_failed != 0.0) {
    const std::string what =
        deferred_error_.empty()
            ? "checkpoint section write failed on another rank (dir " + dir_ +
                  ")"
            : deferred_error_;
    deferred_error_.clear();
    throw Error(what);
  }
}

void CheckpointWriter::finalize() {
  AP3_REQUIRE_MSG(!finalized_, "finalize called twice");
  wait();
  finalized_ = true;
  comm_.barrier();  // every section fully on disk before the manifest appears
  if (comm_.rank() == 0) {
    std::vector<char> blob;
    blob.insert(blob.end(), kMagic, kMagic + sizeof(kMagic));
    put(blob, kCheckpointVersion);
    put(blob, static_cast<std::int32_t>(comm_.size()));
    put(blob, static_cast<std::int32_t>(options_.num_subfiles));
    put(blob, static_cast<std::uint32_t>(sections_.size()));
    for (const auto& [name, codec] : sections_) {
      put_string(blob, name);
      put(blob, static_cast<std::uint8_t>(codec));
    }
    put(blob, static_cast<std::uint32_t>(scalars_.size()));
    for (const auto& [name, value] : scalars_) {
      put_string(blob, name);
      put(blob, value);
    }
    put(blob, fnv1a(blob, blob.size()));

    // Commit point: stage the manifest beside its final name, then publish
    // with an atomic rename. A crash mid-write leaves only *.tmp, which
    // readers never look at — "manifest visible ⇒ snapshot complete".
    write_file_checked(manifest_tmp_path(dir_), {blob.data(), blob.size()});
    std::filesystem::rename(manifest_tmp_path(dir_), manifest_path(dir_));
    bytes_written_ += blob.size();
  }
  comm_.barrier();
}

CheckpointReader::CheckpointReader(const par::Comm& comm,
                                   const std::string& dir)
    : comm_(comm), dir_(dir) {
  // Every rank reads and validates the manifest itself (shared filesystem in
  // this in-process runtime). Symmetric validation means a bad snapshot
  // throws the same ap3::Error on all ranks instead of deadlocking the ones
  // waiting on a broadcast that never comes.
  std::ifstream in(manifest_path(dir_), std::ios::binary);
  AP3_REQUIRE_MSG(in, "no checkpoint manifest at " << manifest_path(dir_));
  std::vector<char> blob((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  AP3_REQUIRE_MSG(blob.size() > sizeof(kMagic) + sizeof(std::uint64_t),
                  "checkpoint manifest truncated");
  AP3_REQUIRE_MSG(std::memcmp(blob.data(), kMagic, sizeof(kMagic)) == 0,
                  "not a checkpoint manifest: bad magic");
  Cursor cursor{blob, sizeof(kMagic)};

  const auto version = cursor.get<std::uint32_t>();
  AP3_REQUIRE_MSG(version == kCheckpointVersion,
                  "checkpoint version "
                      << version << " unsupported (want " << kCheckpointVersion
                      << ") — pre-v2 snapshots lack per-section codecs and "
                         "whole-record subfile checksums; regenerate them");
  const auto nranks = cursor.get<std::int32_t>();
  AP3_REQUIRE_MSG(nranks == comm_.size(),
                  "checkpoint written by " << nranks << " ranks, restoring on "
                                           << comm_.size());
  num_subfiles_ = cursor.get<std::int32_t>();
  AP3_REQUIRE(num_subfiles_ >= 1);

  const auto nsections = cursor.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nsections; ++i) {
    std::string name = cursor.get_string();
    const auto codec = cursor.get<std::uint8_t>();
    AP3_REQUIRE_MSG(codec <= static_cast<std::uint8_t>(Codec::kGroupScaled),
                    "unknown section codec in checkpoint manifest");
    sections_.emplace_back(std::move(name), static_cast<Codec>(codec));
  }
  const auto nscalars = cursor.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nscalars; ++i) {
    std::string name = cursor.get_string();
    scalars_[std::move(name)] = cursor.get<double>();
  }

  const auto stored = cursor.get<std::uint64_t>();
  AP3_REQUIRE_MSG(stored == fnv1a(blob, cursor.at - sizeof(std::uint64_t)),
                  "checkpoint manifest checksum mismatch (corrupt snapshot)");
  AP3_REQUIRE_MSG(cursor.at == blob.size(),
                  "trailing bytes after checkpoint manifest");
}

bool CheckpointReader::has_section(const std::string& name) const {
  return std::find_if(sections_.begin(), sections_.end(), [&](const auto& s) {
           return s.first == name;
         }) != sections_.end();
}

bool CheckpointReader::has_scalar(const std::string& name) const {
  return scalars_.count(name) != 0;
}

double CheckpointReader::scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  AP3_REQUIRE_MSG(it != scalars_.end(),
                  "checkpoint has no scalar '" << name << "'");
  return it->second;
}

Codec CheckpointReader::section_codec(const std::string& name) const {
  for (const auto& [section, codec] : sections_)
    if (section == name) return codec;
  throw Error("checkpoint has no section '" + name + "'");
}

std::vector<std::string> CheckpointReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, codec] : sections_) names.push_back(name);
  return names;
}

FieldData CheckpointReader::read_section(
    const std::string& name,
    const std::vector<std::int64_t>& expected_ids) const {
  AP3_REQUIRE_MSG(has_section(name),
                  "checkpoint has no section '" << name << "'");
  SubfileConfig config{dir_ + "/" + name, num_subfiles_};
  config.expected_codec = section_codec(name);
  return read_subfiles(comm_, config, expected_ids);
}

}  // namespace ap3::io
