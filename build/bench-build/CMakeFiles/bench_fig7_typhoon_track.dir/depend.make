# Empty dependencies file for bench_fig7_typhoon_track.
# This may be replaced when dependencies are built.
