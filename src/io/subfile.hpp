// Parallel I/O with subfile partitioning (§5.2.5).
//
// "A data-partitioning strategy that divides data into smaller subfiles is
// implemented. We assign groups of MPI ranks to the I/O for a set of
// subfiles, and leverage a binary format." Ranks are split into
// `num_subfiles` groups; each group's aggregator gathers members' (id,
// value) pairs and writes one binary subfile with a checksum footer. The
// single-file baseline funnels everything through rank 0 — the original
// bottleneck the optimization removes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/comm.hpp"

namespace ap3::io {

struct FieldData {
  std::vector<std::int64_t> ids;
  std::vector<double> values;
};

/// FNV-1a over the raw value bytes; stored in each file footer and verified
/// on read.
std::uint64_t checksum(std::span<const double> values);

struct SubfileConfig {
  std::string basename;   ///< files are <basename>.<k>.bin
  int num_subfiles = 1;
};

/// Collective write: every rank contributes its (ids, values); group
/// aggregators write `num_subfiles` files. Returns bytes written (on the
/// aggregators; 0 elsewhere).
std::size_t write_subfiles(const par::Comm& comm, const SubfileConfig& config,
                           const FieldData& local);

/// Collective read: aggregators read their subfile and re-scatter each
/// rank's original (ids, values). `expected_ids` tells the reader which ids
/// this rank wants back.
FieldData read_subfiles(const par::Comm& comm, const SubfileConfig& config,
                        const std::vector<std::int64_t>& expected_ids);

/// Baseline: single file through rank 0.
std::size_t write_single(const par::Comm& comm, const std::string& path,
                         const FieldData& local);
FieldData read_single(const par::Comm& comm, const std::string& path,
                      const std::vector<std::int64_t>& expected_ids);

}  // namespace ap3::io
