#include "pp/pool.hpp"

#include <algorithm>
#include <utility>

#include "base/error.hpp"

namespace ap3::pp {

namespace {
// Which pool (if any) owns the calling thread. Set for the whole lifetime of
// a worker thread and, scoped, for a caller participating in its own gang —
// so nested dispatches can detect "I am already inside pool work" and inline.
thread_local const ThreadPool* t_pool_affinity = nullptr;

struct AffinityScope {
  explicit AffinityScope(const ThreadPool* pool)
      : previous(t_pool_affinity) {
    t_pool_affinity = pool;
  }
  ~AffinityScope() { t_pool_affinity = previous; }
  const ThreadPool* previous;
};
}  // namespace

ThreadPool::ThreadPool(int nthreads) {
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_pool_thread() const { return t_pool_affinity == this; }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AP3_REQUIRE_MSG(!stop_, "ThreadPool::submit after shutdown");
    tasks_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::run_chunks(std::size_t nchunks,
                            const std::function<void(std::size_t)>& fn) {
  AP3_REQUIRE_MSG(!on_pool_thread(),
                  "ThreadPool::run_chunks re-entered from a pool thread; "
                  "nested launches must check on_pool_thread() and inline");
  if (nchunks == 0) return;
  // One gang at a time: rank threads (par::run peers share the process-wide
  // pool) queue here instead of corrupting each other's chunk counters.
  std::lock_guard<std::mutex> gang(gang_mutex_);
  AffinityScope affinity(this);

  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  next_chunk_ = 0;
  total_chunks_ = nchunks;
  done_chunks_ = 0;
  gang_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();

  // The caller participates too, so small pools still make progress when a
  // worker is descheduled (this machine has a single CPU).
  for (;;) {
    if (next_chunk_ >= total_chunks_) break;
    const std::size_t mine = next_chunk_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      fn(mine);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err) {
      if (!gang_error_) gang_error_ = err;
      // Abandon unclaimed chunks so the gang drains promptly; each abandoned
      // chunk counts as done (claimed chunks report themselves).
      done_chunks_ += total_chunks_ - next_chunk_;
      next_chunk_ = total_chunks_;
    }
    ++done_chunks_;
    if (done_chunks_ == total_chunks_) cv_done_.notify_all();
  }
  cv_done_.wait(lock, [&] { return done_chunks_ == total_chunks_; });
  job_ = nullptr;
  std::exception_ptr err = std::exchange(gang_error_, nullptr);
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  t_pool_affinity = this;
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    cv_work_.wait(lock, [&] {
      return (stop_ && tasks_.empty()) || !tasks_.empty() ||
             (job_ != nullptr && generation_ != seen_generation &&
              next_chunk_ < total_chunks_);
    });
    if (stop_ && tasks_.empty()) return;
    if (job_ != nullptr && generation_ != seen_generation &&
        next_chunk_ < total_chunks_) {
      const auto* job = job_;
      const std::uint64_t generation = generation_;
      while (job_ == job && generation_ == generation &&
             next_chunk_ < total_chunks_) {
        const std::size_t mine = next_chunk_++;
        lock.unlock();
        std::exception_ptr err;
        try {
          (*job)(mine);
        } catch (...) {
          err = std::current_exception();
        }
        lock.lock();
        if (err) {
          if (!gang_error_) gang_error_ = err;
          done_chunks_ += total_chunks_ - next_chunk_;
          next_chunk_ = total_chunks_;
        }
        ++done_chunks_;
        if (done_chunks_ == total_chunks_) cv_done_.notify_all();
      }
      seen_generation = generation;
      continue;
    }
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();  // stream tasks capture their own exceptions into the Event
      lock.lock();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace ap3::pp
