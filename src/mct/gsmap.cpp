#include "mct/gsmap.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "base/error.hpp"

namespace ap3::mct {

namespace {
/// Compress a sorted id list into (start, length) runs.
std::vector<Segment> runs_of(const std::vector<std::int64_t>& ids, int pe) {
  std::vector<Segment> out;
  for (std::size_t k = 0; k < ids.size();) {
    std::int64_t start = ids[k];
    std::int64_t len = 1;
    while (k + static_cast<std::size_t>(len) < ids.size() &&
           ids[k + static_cast<std::size_t>(len)] == start + len)
      ++len;
    out.push_back({start, len, pe});
    k += static_cast<std::size_t>(len);
  }
  return out;
}
}  // namespace

GlobalSegMap GlobalSegMap::build(const par::Comm& comm,
                                 const std::vector<std::int64_t>& owned_ids) {
  AP3_REQUIRE(std::is_sorted(owned_ids.begin(), owned_ids.end()));
  // Compress locally, then allgather the segments (MCT gathers raw index
  // lists; run-compressing first is already a standard optimization).
  const std::vector<Segment> mine = runs_of(owned_ids, comm.rank());
  std::vector<std::int64_t> flat;
  flat.reserve(mine.size() * 2);
  for (const Segment& s : mine) {
    flat.push_back(s.gstart);
    flat.push_back(s.length);
  }
  std::vector<std::size_t> counts;
  const std::vector<std::int64_t> all =
      comm.allgatherv(std::span<const std::int64_t>(flat), &counts);

  GlobalSegMap map;
  map.num_pes_ = comm.size();
  std::size_t offset = 0;
  for (int pe = 0; pe < comm.size(); ++pe) {
    const std::size_t n = counts[static_cast<std::size_t>(pe)];
    for (std::size_t k = 0; k < n; k += 2)
      map.segments_.push_back({all[offset + k], all[offset + k + 1], pe});
    offset += n;
  }
  map.finalize();
  return map;
}

GlobalSegMap GlobalSegMap::from_all(
    const std::vector<std::vector<std::int64_t>>& ids_by_rank) {
  GlobalSegMap map;
  map.num_pes_ = static_cast<int>(ids_by_rank.size());
  for (int pe = 0; pe < map.num_pes_; ++pe) {
    const auto& ids = ids_by_rank[static_cast<std::size_t>(pe)];
    AP3_REQUIRE(std::is_sorted(ids.begin(), ids.end()));
    const auto runs = runs_of(ids, pe);
    map.segments_.insert(map.segments_.end(), runs.begin(), runs.end());
  }
  map.finalize();
  return map;
}

void GlobalSegMap::finalize() {
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.pe != b.pe ? a.pe < b.pe : a.gstart < b.gstart;
            });
  gsize_ = 0;
  for (const Segment& s : segments_) {
    AP3_REQUIRE_MSG(s.length > 0, "empty GSMap segment");
    gsize_ = std::max(gsize_, s.gstart + s.length);
  }
}

int GlobalSegMap::owner(std::int64_t gid) const {
  for (const Segment& s : segments_) {
    if (gid >= s.gstart && gid < s.gstart + s.length) return s.pe;
  }
  throw ap3::Error("GSMap: global id " + std::to_string(gid) + " unmapped");
}

bool GlobalSegMap::contains(std::int64_t gid) const {
  for (const Segment& s : segments_)
    if (gid >= s.gstart && gid < s.gstart + s.length) return true;
  return false;
}

std::int64_t GlobalSegMap::local_index(int pe, std::int64_t gid) const {
  std::int64_t offset = 0;
  for (const Segment& s : segments_) {
    if (s.pe != pe) continue;
    if (gid >= s.gstart && gid < s.gstart + s.length)
      return offset + (gid - s.gstart);
    offset += s.length;
  }
  throw ap3::Error("GSMap: gid " + std::to_string(gid) + " not on pe " +
                   std::to_string(pe));
}

std::int64_t GlobalSegMap::local_size(int pe) const {
  std::int64_t total = 0;
  for (const Segment& s : segments_)
    if (s.pe == pe) total += s.length;
  return total;
}

std::vector<std::int64_t> GlobalSegMap::local_ids(int pe) const {
  std::vector<std::int64_t> out;
  for (const Segment& s : segments_) {
    if (s.pe != pe) continue;
    for (std::int64_t g = s.gstart; g < s.gstart + s.length; ++g)
      out.push_back(g);
  }
  return out;
}

std::vector<std::uint8_t> GlobalSegMap::serialize() const {
  // Layout: [num_pes:i64][nsegs:i64] then (gstart,length,pe) per segment.
  std::vector<std::uint8_t> blob;
  auto push_i64 = [&](std::int64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    blob.insert(blob.end(), p, p + sizeof(v));
  };
  push_i64(num_pes_);
  push_i64(static_cast<std::int64_t>(segments_.size()));
  for (const Segment& s : segments_) {
    push_i64(s.gstart);
    push_i64(s.length);
    push_i64(s.pe);
  }
  return blob;
}

GlobalSegMap GlobalSegMap::deserialize(const std::vector<std::uint8_t>& blob) {
  std::size_t pos = 0;
  auto read_i64 = [&]() {
    AP3_REQUIRE_MSG(pos + sizeof(std::int64_t) <= blob.size(),
                    "truncated GSMap blob");
    std::int64_t v;
    std::memcpy(&v, blob.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  GlobalSegMap map;
  map.num_pes_ = static_cast<int>(read_i64());
  const std::int64_t nsegs = read_i64();
  for (std::int64_t k = 0; k < nsegs; ++k) {
    Segment s;
    s.gstart = read_i64();
    s.length = read_i64();
    s.pe = static_cast<int>(read_i64());
    map.segments_.push_back(s);
  }
  map.finalize();
  return map;
}

void GlobalSegMap::save(const std::string& path) const {
  const auto blob = serialize();
  std::ofstream out(path, std::ios::binary);
  AP3_REQUIRE_MSG(out, "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
}

GlobalSegMap GlobalSegMap::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AP3_REQUIRE_MSG(in, "cannot open " << path);
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return deserialize(blob);
}

}  // namespace ap3::mct
