// Computing-power-network federation model — the paper's §8 outlook,
// implemented: "To further scale, we will explore federating geographically
// distributed HPC clusters through a computing power network, enabling
// task-level parallel execution of distinct ESM components."
//
// The model places the atmosphere task domain on one cluster and the ocean
// on another, connected by a wide-area link. Component compute/comm costs
// come from the same mechanistic machinery as the single-machine model; the
// WAN adds per-coupling-event transfer and latency. The interesting outputs
// are the break-even WAN bandwidth (where federation stops losing to a
// single machine of the combined size) and the sensitivity to coupling
// frequency — the knobs §8 says decide whether federation pays off.
#pragma once

#include "perf/scaling.hpp"

namespace ap3::perf {

struct WanLink {
  double bandwidth_gbs = 10.0;     ///< usable wide-area bandwidth
  double latency_seconds = 20e-3;  ///< one-way latency (geographic distance)
};

struct FederationConfig {
  AtmWorkload atm;
  OcnWorkload ocn;
  long long atm_cluster_nodes = 0;  ///< Sunway-class nodes at site A
  long long ocn_cluster_nodes = 0;  ///< Sunway-class nodes at site B
  WanLink wan;
  double atm_couplings_per_day = 180.0;  ///< §6.1 frequencies
  double ocn_couplings_per_day = 36.0;
  int coupling_fields = 8;               ///< fields exchanged per event
};

struct FederationPrediction {
  double seconds_per_day = 0.0;  ///< wall seconds per simulated day
  double sypd = 0.0;
  double wan_seconds_per_day = 0.0;  ///< WAN share of the total
  double atm_seconds_per_day = 0.0;
  double ocn_seconds_per_day = 0.0;
  bool wan_bound = false;  ///< the WAN (not a component) paces the model
};

class FederationModel {
 public:
  explicit FederationModel(const ScalingModel& base) : base_(base) {}

  /// Apply per-component software-efficiency coefficients (solved by the
  /// Table 2 calibration) so federated predictions live on the same absolute
  /// scale as the published numbers. Defaults of 1.0 keep the raw
  /// mechanistic costs.
  void set_component_calibration(double atm_compute, double atm_comm,
                                 double ocn_compute, double ocn_comm) {
    atm_a_ = atm_compute;
    atm_b_ = atm_comm;
    ocn_a_ = ocn_compute;
    ocn_b_ = ocn_comm;
  }

  FederationPrediction predict(const FederationConfig& config) const;

  /// Single-machine reference: both domains on one cluster of
  /// (atm_nodes + ocn_nodes) with the §7.2 concurrent layout.
  double single_machine_sypd(const FederationConfig& config) const;

  /// Smallest WAN bandwidth [GB/s] at which the federation reaches
  /// `fraction` of the single-machine throughput (bisection; 0 if even an
  /// infinite link cannot reach it).
  double breakeven_bandwidth_gbs(const FederationConfig& config,
                                 double fraction = 0.95) const;

 private:
  double atm_seconds(const FederationConfig& config, long long nodes) const;
  double ocn_seconds(const FederationConfig& config, long long nodes) const;
  const ScalingModel& base_;
  double atm_a_ = 1.0, atm_b_ = 1.0, ocn_a_ = 1.0, ocn_b_ = 1.0;
};

}  // namespace ap3::perf
