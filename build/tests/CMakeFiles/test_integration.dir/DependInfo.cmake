
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coupler/CMakeFiles/ap3_coupler.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ap3_io.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ap3_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/ice/CMakeFiles/ap3_ice.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/ap3_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/lnd/CMakeFiles/ap3_lnd.dir/DependInfo.cmake"
  "/root/repo/build/src/ocn/CMakeFiles/ap3_ocn.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/ap3_mct.dir/DependInfo.cmake"
  "/root/repo/build/src/precision/CMakeFiles/ap3_precision.dir/DependInfo.cmake"
  "/root/repo/build/src/sunway/CMakeFiles/ap3_sunway.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ap3_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/ap3_par.dir/DependInfo.cmake"
  "/root/repo/build/src/ai/CMakeFiles/ap3_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ap3_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/pp/CMakeFiles/ap3_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ap3_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
