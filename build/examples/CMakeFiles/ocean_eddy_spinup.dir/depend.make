# Empty dependencies file for ocean_eddy_spinup.
# This may be replaced when dependencies are built.
