file(REMOVE_RECURSE
  "CMakeFiles/ap3_atm.dir/dycore.cpp.o"
  "CMakeFiles/ap3_atm.dir/dycore.cpp.o.d"
  "CMakeFiles/ap3_atm.dir/model.cpp.o"
  "CMakeFiles/ap3_atm.dir/model.cpp.o.d"
  "CMakeFiles/ap3_atm.dir/physics.cpp.o"
  "CMakeFiles/ap3_atm.dir/physics.cpp.o.d"
  "CMakeFiles/ap3_atm.dir/vortex.cpp.o"
  "CMakeFiles/ap3_atm.dir/vortex.cpp.o.d"
  "libap3_atm.a"
  "libap3_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ap3_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
