// Tests for the tensor/NN substrate: kernel correctness (including
// finite-difference gradient checks), layer semantics, and optimizer
// behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hpp"
#include "obs/obs.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/layers.hpp"
#include "tensor/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ap3;
using tensor::Tensor;

TEST(Tensor, ShapeAndAccess) {
  Tensor t({2, 3});
  t.at2(1, 2) = 5.0f;
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t[1 * 3 + 2], 5.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r[7], 3.0f);
  EXPECT_THROW(t.reshaped({5, 5}), ap3::Error);
}

TEST(Tensor, MatmulNtKnownAnswer) {
  // a = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]] (3x2) -> a*w^T is 2x3.
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor w({3, 2}, {1, 0, 0, 1, 1, 1});
  const Tensor out = tensor::matmul_nt(a, w);
  EXPECT_EQ(out.at2(0, 0), 1.0f);
  EXPECT_EQ(out.at2(0, 1), 2.0f);
  EXPECT_EQ(out.at2(0, 2), 3.0f);
  EXPECT_EQ(out.at2(1, 2), 7.0f);
}

TEST(Tensor, MatmulMatchesNtComposition) {
  Rng rng(5);
  Tensor a({4, 3}), b({3, 5});
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal());
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal());
  const Tensor ab = tensor::matmul(a, b);
  // Compare against transpose-based path.
  Tensor bt({5, 3});
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 5; ++j) bt.at2(j, i) = b.at2(i, j);
  const Tensor ref = tensor::matmul_nt(a, bt);
  for (size_t i = 0; i < ab.size(); ++i) EXPECT_NEAR(ab[i], ref[i], 1e-5f);
}

TEST(Tensor, Conv1dIdentityKernel) {
  // K=1 kernel with weight 1 reproduces the input channel.
  Tensor x({1, 1, 5}, {1, 2, 3, 4, 5});
  Tensor k({1, 1, 1}, {1.0f});
  Tensor b({1});
  const Tensor y = tensor::conv1d(x, k, b);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Tensor, Conv1dBoxFilterWithPadding) {
  Tensor x({1, 1, 4}, {1, 1, 1, 1});
  Tensor k({1, 1, 3}, {1, 1, 1});
  Tensor b({1});
  const Tensor y = tensor::conv1d(x, k, b);
  // Interior points see 3 ones; edges see 2 (zero padding).
  EXPECT_EQ(y[0], 2.0f);
  EXPECT_EQ(y[1], 3.0f);
  EXPECT_EQ(y[2], 3.0f);
  EXPECT_EQ(y[3], 2.0f);
}

TEST(Tensor, Conv1dMultiChannelShapes) {
  Tensor x({2, 3, 7});
  Tensor k({4, 3, 3});
  Tensor b({4});
  const Tensor y = tensor::conv1d(x, k, b);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{2, 4, 7}));
}

TEST(Tensor, Conv1dEvenKernelThrows) {
  Tensor x({1, 1, 4});
  Tensor k({1, 1, 2});
  Tensor b({1});
  EXPECT_THROW(tensor::conv1d(x, k, b), ap3::Error);
}

// Finite-difference check of conv1d gradients — the core of backprop
// correctness for the tendency CNN.
TEST(Tensor, Conv1dGradientsMatchFiniteDifference) {
  Rng rng(11);
  Tensor x({2, 2, 5}), k({3, 2, 3}), b({3});
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal());
  for (size_t i = 0; i < k.size(); ++i) k[i] = static_cast<float>(rng.normal() * 0.3);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal() * 0.1);

  // Loss = sum(y^2)/2 so dL/dy = y.
  auto loss = [&](const Tensor& xx, const Tensor& kk, const Tensor& bb) {
    const Tensor y = tensor::conv1d(xx, kk, bb);
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i) acc += 0.5 * y[i] * y[i];
    return acc;
  };

  const Tensor y = tensor::conv1d(x, k, b);
  Tensor gk({3, 2, 3}), gb({3});
  const Tensor gx = tensor::conv1d_backward(x, k, y, gk, gb);

  const float eps = 1e-3f;
  // Check a sample of input gradients.
  for (size_t idx : {0u, 7u, 13u, 19u}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double fd = (loss(xp, k, b) - loss(xm, k, b)) / (2.0 * eps);
    EXPECT_NEAR(gx[idx], fd, 2e-2) << "input grad " << idx;
  }
  // Check a sample of kernel gradients.
  for (size_t idx : {0u, 5u, 11u, 17u}) {
    Tensor kp = k, km = k;
    kp[idx] += eps;
    km[idx] -= eps;
    const double fd = (loss(x, kp, b) - loss(x, km, b)) / (2.0 * eps);
    EXPECT_NEAR(gk[idx], fd, 2e-2) << "kernel grad " << idx;
  }
  // Bias gradients.
  for (size_t idx : {0u, 2u}) {
    Tensor bp = b, bm = b;
    bp[idx] += eps;
    bm[idx] -= eps;
    const double fd = (loss(x, k, bp) - loss(x, k, bm)) / (2.0 * eps);
    EXPECT_NEAR(gb[idx], fd, 2e-2) << "bias grad " << idx;
  }
}

TEST(Tensor, ReluAndBackward) {
  Tensor x({1, 4}, {-1, 0, 2, -3});
  const Tensor y = tensor::relu(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g({1, 4}, {1, 1, 1, 1});
  const Tensor gx = tensor::relu_backward(x, g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[2], 1.0f);
}

TEST(Tensor, MseAndGrad) {
  Tensor pred({1, 2}, {1.0f, 3.0f});
  Tensor target({1, 2}, {0.0f, 0.0f});
  EXPECT_NEAR(tensor::mse(pred, target), (1.0 + 9.0) / 2.0, 1e-6);
  const Tensor g = tensor::mse_grad(pred, target);
  EXPECT_NEAR(g[0], 1.0f, 1e-6);
  EXPECT_NEAR(g[1], 3.0f, 1e-6);
}

TEST(Layers, DenseForwardShape) {
  Rng rng(3);
  tensor::Dense dense(4, 3, rng);
  Tensor x({5, 4});
  const Tensor y = dense.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<size_t>{5, 3}));
}

TEST(Layers, DenseGradientFiniteDifference) {
  Rng rng(9);
  tensor::Dense dense(3, 2, rng);
  Tensor x({2, 3});
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal());

  auto loss_for_weight = [&](size_t widx, float delta) {
    tensor::Dense d2(3, 2, rng);
    d2.weight = dense.weight;
    d2.bias = dense.bias;
    d2.weight[widx] += delta;
    const Tensor y = d2.forward(x);
    double acc = 0.0;
    for (size_t i = 0; i < y.size(); ++i) acc += 0.5 * y[i] * y[i];
    return acc;
  };

  const Tensor y = dense.forward(x);
  dense.zero_grads();
  dense.backward(y);  // dL/dy = y for L = sum y^2/2
  const float eps = 1e-3f;
  for (size_t idx : {0u, 3u, 5u}) {
    const double fd =
        (loss_for_weight(idx, eps) - loss_for_weight(idx, -eps)) / (2.0 * eps);
    EXPECT_NEAR(dense.grad_weight[idx], fd, 2e-2);
  }
}

TEST(Layers, ResUnitPreservesShapeAndSkips) {
  Rng rng(4);
  std::vector<std::unique_ptr<tensor::Layer>> inner;
  auto conv = std::make_unique<tensor::Conv1D>(2, 2, 3, rng);
  conv->kernel.zero();  // inner branch contributes nothing
  conv->bias.zero();
  inner.push_back(std::move(conv));
  tensor::ResUnit unit(std::move(inner));
  Tensor x({1, 2, 4});
  for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i) + 1.0f;
  const Tensor y = unit.forward(x);
  // relu(0 + x) = x for positive x: pure skip.
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Layers, SequentialSaveLoadRoundTrip) {
  Rng rng(6);
  tensor::Sequential model;
  model.add(std::make_unique<tensor::Dense>(4, 8, rng));
  model.add(std::make_unique<tensor::ReLU>());
  model.add(std::make_unique<tensor::Dense>(8, 2, rng));
  const std::vector<float> weights = model.save_weights();

  tensor::Sequential other;
  Rng rng2(999);
  other.add(std::make_unique<tensor::Dense>(4, 8, rng2));
  other.add(std::make_unique<tensor::ReLU>());
  other.add(std::make_unique<tensor::Dense>(8, 2, rng2));
  other.load_weights(weights);

  Tensor x({3, 4});
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.1f * static_cast<float>(i);
  const Tensor a = model.forward(x);
  const Tensor b = other.forward(x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Optimizer, AdamReducesLossOnRegression) {
  // Fit y = 2x1 - x2 + 0.5 with a linear layer.
  Rng rng(8);
  tensor::Sequential model;
  model.add(std::make_unique<tensor::Dense>(2, 1, rng));
  tensor::Adam adam(model, {5e-2f, 0.9f, 0.999f, 1e-8f});

  Tensor x({64, 2}), y({64, 1});
  for (size_t i = 0; i < 64; ++i) {
    const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1);
    x.at2(i, 0) = static_cast<float>(a);
    x.at2(i, 1) = static_cast<float>(b);
    y.at2(i, 0) = static_cast<float>(2 * a - b + 0.5);
  }
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    model.zero_grads();
    const Tensor pred = model.forward(x);
    const float loss = tensor::mse(pred, y);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model.backward(tensor::mse_grad(pred, y));
    adam.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01f);
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(Optimizer, StateRoundTripResumesBitExactly) {
  Rng rng(21);
  auto build = [&](Rng& r) {
    tensor::Sequential m;
    m.add(std::make_unique<tensor::Dense>(3, 4, r));
    m.add(std::make_unique<tensor::ReLU>());
    m.add(std::make_unique<tensor::Dense>(4, 2, r));
    return m;
  };
  tensor::Sequential a = build(rng);
  Rng rng2(21);
  tensor::Sequential b = build(rng2);
  tensor::Adam opt_a(a, {1e-2f, 0.9f, 0.999f, 1e-8f});
  tensor::Adam opt_b(b, {1e-2f, 0.9f, 0.999f, 1e-8f});

  Tensor x({8, 3}), y({8, 2});
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.1f * static_cast<float>(i % 7);
  for (size_t i = 0; i < y.size(); ++i) y[i] = 0.2f * static_cast<float>(i % 5);
  auto step = [&](tensor::Sequential& m, tensor::Adam& o) {
    m.zero_grads();
    const Tensor pred = m.forward(x);
    m.backward(tensor::mse_grad(pred, y));
    o.step();
  };
  // a: 3 steps straight; b: 3 steps with a save/restore in the middle.
  step(a, opt_a);
  step(b, opt_b);
  const tensor::Adam::State snap = opt_b.state();
  b.load_weights(b.save_weights());
  opt_b.restore_state(snap);
  for (int i = 0; i < 2; ++i) {
    step(a, opt_a);
    step(b, opt_b);
  }
  const std::vector<float> wa = a.save_weights();
  const std::vector<float> wb = b.save_weights();
  ASSERT_EQ(wa.size(), wb.size());
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]) << i;
}

// --- backend-equivalence properties ------------------------------------------
// The portability contract (tensor/dispatch.hpp): every forward/backward
// kernel is bit-identical on kSerial, kHostThreads, and the simulated
// kSunwayCPE, because per-element work is chunked without changing any
// accumulation order.

constexpr pp::ExecSpace kSpaces[] = {pp::ExecSpace::kSerial,
                                     pp::ExecSpace::kHostThreads,
                                     pp::ExecSpace::kSunwayCPE};

Tensor random_tensor(std::vector<size_t> shape, Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal()) * scale;
  return t;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
}

TEST(Dispatch, MatmulNtBitIdenticalAcrossSpaces) {
  Rng rng(31);
  // 70x40 * 50x40^T: big enough that the CPE path tiles (several panels).
  const Tensor a = random_tensor({70, 40}, rng);
  const Tensor w = random_tensor({50, 40}, rng);
  tensor::DispatchScope serial({pp::ExecSpace::kSerial, 0,
                                tensor::Accum::kFloat32});
  const Tensor ref = tensor::matmul_nt(a, w);
  for (pp::ExecSpace space : kSpaces) {
    tensor::DispatchScope scope({space, 0, tensor::Accum::kFloat32});
    expect_bitwise(tensor::matmul_nt(a, w), ref, "matmul_nt");
  }
}

TEST(Dispatch, Conv1dForwardAndBackwardBitIdenticalAcrossSpaces) {
  Rng rng(32);
  const Tensor x = random_tensor({3, 4, 17}, rng);
  const Tensor k = random_tensor({5, 4, 3}, rng, 0.3f);
  const Tensor b = random_tensor({5}, rng, 0.1f);
  tensor::DispatchScope serial({pp::ExecSpace::kSerial, 0,
                                tensor::Accum::kFloat32});
  const Tensor y_ref = tensor::conv1d(x, k, b);
  Tensor gk_ref({5, 4, 3}), gb_ref({5});
  const Tensor gx_ref = tensor::conv1d_backward(x, k, y_ref, gk_ref, gb_ref);
  for (pp::ExecSpace space : kSpaces) {
    tensor::DispatchScope scope({space, 0, tensor::Accum::kFloat32});
    const Tensor y = tensor::conv1d(x, k, b);
    expect_bitwise(y, y_ref, "conv1d forward");
    Tensor gk({5, 4, 3}), gb({5});
    const Tensor gx = tensor::conv1d_backward(x, k, y, gk, gb);
    expect_bitwise(gx, gx_ref, "conv1d grad_in");
    expect_bitwise(gk, gk_ref, "conv1d grad_kernel");
    expect_bitwise(gb, gb_ref, "conv1d grad_bias");
  }
}

TEST(Dispatch, DenseForwardBackwardBitIdenticalAcrossSpaces) {
  Rng rng(33);
  tensor::Dense dense(24, 16, rng);
  const Tensor x = random_tensor({40, 24}, rng);
  tensor::DispatchScope serial({pp::ExecSpace::kSerial, 0,
                                tensor::Accum::kFloat32});
  const Tensor y_ref = dense.forward(x);
  dense.zero_grads();
  const Tensor gx_ref = dense.backward(y_ref);
  const Tensor gw_ref = dense.grad_weight;
  for (pp::ExecSpace space : kSpaces) {
    tensor::DispatchScope scope({space, 0, tensor::Accum::kFloat32});
    const Tensor y = dense.forward(x);
    expect_bitwise(y, y_ref, "dense forward");
    dense.zero_grads();
    const Tensor gx = dense.backward(y);
    expect_bitwise(gx, gx_ref, "dense grad_in");
    expect_bitwise(dense.grad_weight, gw_ref, "dense grad_weight");
  }
}

TEST(Dispatch, CpeMatmulStagesThroughLdm) {
  obs::set_enabled(true);
  const double dma_before = obs::total_counter("sunway:dma:bytes");
  const double ldm_before = obs::total_counter("tensor:cpe:ldm_bytes");
  Rng rng(34);
  const Tensor a = random_tensor({64, 32}, rng);
  const Tensor w = random_tensor({64, 32}, rng);
  tensor::DispatchScope scope({pp::ExecSpace::kSunwayCPE, 0,
                               tensor::Accum::kFloat32});
  (void)tensor::matmul_nt(a, w);
  EXPECT_GT(obs::total_counter("sunway:dma:bytes"), dma_before);
  EXPECT_GT(obs::total_counter("tensor:cpe:ldm_bytes"), ldm_before);
}

TEST(Dispatch, Fp64AccumulationStaysCloseToFp32) {
  Rng rng(35);
  const Tensor a = random_tensor({16, 64}, rng);
  const Tensor w = random_tensor({16, 64}, rng);
  tensor::DispatchScope f32({pp::ExecSpace::kSerial, 0,
                             tensor::Accum::kFloat32});
  const Tensor y32 = tensor::matmul_nt(a, w);
  tensor::DispatchScope f64({pp::ExecSpace::kSerial, 0,
                             tensor::Accum::kFloat64});
  const Tensor y64 = tensor::matmul_nt(a, w);
  for (size_t i = 0; i < y32.size(); ++i)
    EXPECT_NEAR(y32[i], y64[i], 1e-3f) << i;
}

}  // namespace
