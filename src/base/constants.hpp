// Physical and planetary constants shared by all components.
#pragma once

namespace ap3::constants {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;

// Earth.
inline constexpr double kEarthRadiusM = 6.371e6;     ///< mean radius [m]
inline constexpr double kGravity = 9.80616;          ///< [m s^-2]
inline constexpr double kOmega = 7.292115e-5;        ///< rotation rate [s^-1]

// Dry air.
inline constexpr double kRdry = 287.04;              ///< gas constant [J kg^-1 K^-1]
inline constexpr double kCpDry = 1004.64;            ///< heat capacity [J kg^-1 K^-1]
inline constexpr double kKappa = kRdry / kCpDry;

// Water.
inline constexpr double kLatentVap = 2.501e6;        ///< vaporization [J kg^-1]
inline constexpr double kLatentFus = 3.337e5;        ///< fusion [J kg^-1]
inline constexpr double kRhoWater = 1000.0;          ///< fresh water [kg m^-3]
inline constexpr double kRhoSeawater = 1026.0;       ///< reference [kg m^-3]
inline constexpr double kCpSeawater = 3996.0;        ///< [J kg^-1 K^-1]
inline constexpr double kRhoIce = 917.0;             ///< sea ice [kg m^-3]

// Radiation / thermodynamics.
inline constexpr double kStefanBoltzmann = 5.670374419e-8;  ///< [W m^-2 K^-4]
inline constexpr double kSolarConstant = 1361.0;            ///< [W m^-2]
inline constexpr double kT0 = 273.15;                       ///< 0 °C in K
inline constexpr double kSeawaterFreeze = -1.8;             ///< [°C] at 35 psu

// Calendar (no-leap calendar, as in CESM default).
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kDaysPerYear = 365.0;
inline constexpr double kSecondsPerYear = kSecondsPerDay * kDaysPerYear;

}  // namespace ap3::constants
