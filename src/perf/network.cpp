#include "perf/network.hpp"

#include <cmath>

#include "sunway/arch.hpp"

namespace ap3::perf {

NetworkModel::NetworkModel(MachineKind kind) : kind_(kind) {
  if (kind == MachineKind::kSunwayOceanLight) {
    latency_ = sunway::kNetworkLatencySeconds;
    intra_gbs_ = sunway::kIntraSupernodeBandwidthGBs;
    inter_gbs_ = sunway::kInterSupernodeBandwidthGBs;
  } else {
    latency_ = sunway::kOriseNetworkLatencySeconds;
    intra_gbs_ = sunway::kOriseNetworkBandwidthGBs;
    inter_gbs_ = sunway::kOriseNetworkBandwidthGBs;  // flat fabric
  }
  supernode_nodes_ = sunway::kNodesPerSupernode;
}

double NetworkModel::p2p_seconds(double bytes, bool same_supernode) const {
  const double gbs = same_supernode ? intra_gbs_ : inter_gbs_;
  return latency_ + bytes / (gbs * 1e9);
}

double NetworkModel::halo_seconds(double bytes, int neighbors,
                                  long long nodes) const {
  // Fraction of neighbors inside the supernode shrinks as the job spans
  // more supernodes; beyond a few supernodes most block-neighbors in a 2-D
  // decomposition land outside.
  double inside_fraction = 1.0;
  if (kind_ == MachineKind::kSunwayOceanLight &&
      nodes > sunway::kNodesPerSupernode) {
    const double supernodes =
        static_cast<double>(nodes) / sunway::kNodesPerSupernode;
    inside_fraction = std::max(0.25, 1.0 / std::sqrt(supernodes));
  }
  const double inside = p2p_seconds(bytes, true);
  const double outside = p2p_seconds(bytes, false);
  // Messages to distinct neighbors serialize on the injection port.
  return neighbors *
         (inside_fraction * inside + (1.0 - inside_fraction) * outside);
}

double NetworkModel::intra_fraction(long long nodes) const {
  if (nodes <= supernode_nodes_) return 1.0;
  // Of a rank's nodes-1 potential tree partners, supernode_nodes_-1 share
  // its supernode; under a random round pairing that is the share of rounds
  // staying on the leaf switch.
  return static_cast<double>(supernode_nodes_ - 1) /
         static_cast<double>(nodes - 1);
}

double NetworkModel::allreduce_seconds(double bytes, long long nodes) const {
  if (nodes <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(nodes)));
  const double f = intra_fraction(nodes);
  const double per_round =
      f * p2p_seconds(bytes, true) + (1.0 - f) * p2p_seconds(bytes, false);
  return 2.0 * rounds * per_round;
}

double NetworkModel::hierarchical_allreduce_seconds(double bytes,
                                                    long long nodes) const {
  if (nodes <= 1) return 0.0;
  const long long k = supernode_nodes_;
  const long long intra_nodes = std::min(nodes, k);
  const long long supernodes = (nodes + k - 1) / k;
  const double intra_rounds =
      intra_nodes > 1 ? std::ceil(std::log2(static_cast<double>(intra_nodes)))
                      : 0.0;
  const double inter_rounds =
      supernodes > 1 ? std::ceil(std::log2(static_cast<double>(supernodes)))
                     : 0.0;
  return 2.0 * intra_rounds * p2p_seconds(bytes, true) +
         2.0 * inter_rounds * p2p_seconds(bytes, false);
}

double NetworkModel::exchange_seconds(const LevelTraffic& traffic) const {
  return static_cast<double>(traffic.intra_messages) * latency_ +
         traffic.intra_bytes / (intra_gbs_ * 1e9) +
         static_cast<double>(traffic.inter_messages) * latency_ +
         traffic.inter_bytes / (inter_gbs_ * 1e9);
}

}  // namespace ap3::perf
